"""``repro-serve``: run the simulation job server.

Examples::

    repro-serve                          # 127.0.0.1:8765, all cores
    repro-serve --port 0 --workers 2     # ephemeral port, two workers
    curl -s localhost:8765/healthz

The server announces its bound address on stdout (``repro-serve listening
on http://HOST:PORT``) before accepting requests — with ``--port 0`` that
line is how scripts learn the ephemeral port.  Ctrl-C shuts down cleanly:
the HTTP loop stops, then the worker pool is torn down.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..engine.errors import ReproError
from ..fingerprint import PACKAGE_VERSION, code_fingerprint
from .app import make_server
from .cache import ResultCache
from .jobs import JobManager

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Serve sweep/scenario/search jobs over HTTP with a "
            "content-addressed result cache."
        ),
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: %(default)s; loopback only)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8765,
        help="port to bind; 0 picks an ephemeral port (default: %(default)s)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the shared pool (default: all cores)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help=(
            "max cells handed to the pool per batch, also the cancellation "
            "granularity (default: 2x workers, at least 4)"
        ),
    )
    parser.add_argument(
        "--cache-entries",
        type=int,
        default=4096,
        help="result-cache capacity in cell records (default: %(default)s)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "persist the result cache as <key>.json files in this directory "
            "(created if missing); a restarted server serves identical "
            "resubmissions from disk (default: in-memory only)"
        ),
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        help=(
            "LRU bytes budget for the on-disk cache; least-recently-used "
            "entry files are deleted once exceeded (default: unbounded)"
        ),
    )
    parser.add_argument(
        "--lease-ttl-s",
        type=float,
        default=60.0,
        help=(
            "remote work-lease time-to-live; a repro-worker that stops "
            "heartbeating for this long is presumed dead and its cell is "
            "requeued (default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--remote-only",
        action="store_true",
        help=(
            "never execute cells on the local pool; every cell waits for a "
            "repro-worker to lease it (pure scheduler mode)"
        ),
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-request and per-job log lines",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    progress = None if args.quiet else lambda line: print(line, flush=True)
    try:
        manager = JobManager(
            workers=args.workers,
            max_inflight=args.max_inflight,
            cache=ResultCache(
                max_entries=args.cache_entries,
                cache_dir=args.cache_dir,
                max_disk_bytes=args.cache_max_bytes,
            ),
            progress=progress,
            lease_ttl_s=args.lease_ttl_s,
            local_execution=not args.remote_only,
        )
    except (ReproError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    server = make_server(args.host, args.port, manager, quiet=args.quiet)
    host, port = server.server_address[:2]
    print(
        f"repro-serve listening on http://{host}:{port} "
        f"(version {PACKAGE_VERSION}, fingerprint {code_fingerprint()}, "
        f"{manager.workers} worker(s))",
        flush=True,
    )
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        server.server_close()
        manager.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Fault models for chaos campaigns.

A fault model corrupts a set of uniformly-random victim agents, with an
implementation for *each* population representation: in-place state surgery
under the per-agent backend (:meth:`AgentBackend.corrupt_agents`) and
key-histogram surgery under the batch backend
(:meth:`BatchBackend.corrupt_histogram`).  The two implementations realise
the same fault law marginalised to the respective representation, which is
what keeps agent/batch scenario results comparable.

Models are registered by name so that scenario specs stay declarative; the
builtin models are protocol-agnostic.  Protocol-specific corruptions can be
registered by callers via :func:`register_fault`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Hashable, List

from ..counting.keys import PHASE_RESIDUE_MODULUS, clock_from_key, clock_key
from ..engine.backends import BatchBackend
from ..engine.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance for typing only
    from ..engine.simulator import Simulator

__all__ = ["FaultModel", "FAULTS", "register_fault", "resolve_fault", "fault_names"]


@dataclass(frozen=True)
class FaultModel:
    """A named corruption law applicable under either backend.

    Attributes:
        name: Registry key used by scenario specs.
        summary: One line shown by ``repro-chaos --list``.
        apply: Callable ``(simulator, victims, rng) -> details`` corrupting
            ``victims`` uniformly-random distinct agents.
    """

    name: str
    summary: str
    apply: Callable[["Simulator", int, random.Random], Dict[str, Any]]


def _reset_fault(simulator: "Simulator", victims: int, rng: random.Random) -> Dict[str, Any]:
    """Victims crash and restart fresh: each becomes a brand-new agent.

    The single-agent analogue of a population restart — the victim loses all
    protocol state (tokens, broadcast values, clock phase) and re-enters in
    the initial state of a never-seen agent id.
    """
    backend = simulator.backend
    if isinstance(backend, BatchBackend):
        changed = backend.corrupt_histogram(
            victims,
            lambda _key, _rng: backend.register_state(backend.fresh_initial_state()),
            rng,
        )
    else:
        changed = backend.corrupt_agents(
            victims, lambda _state, _rng: backend.fresh_initial_state(), rng
        )
    return {"fault": "reset", "victims": victims, "changed": changed}


def _clone_fault(simulator: "Simulator", victims: int, rng: random.Random) -> Dict[str, Any]:
    """Each victim silently adopts the full state of a random donor agent.

    Duplicated state is the classic Byzantine hazard for counting protocols
    (a cloned token pile breaks the Σ = n invariant).  Donors are drawn
    uniformly and independently per victim from the *pre-fault* population —
    under both backends: the batch path samples a histogram snapshot, the
    agent path snapshots its donor states before any victim is overwritten,
    so a victim can never clone another victim's freshly-cloned state.
    """
    backend = simulator.backend
    if isinstance(backend, BatchBackend):
        # Donor keys are drawn from a snapshot of the pre-fault histogram.
        donors: List[Hashable] = []
        weights: List[int] = []
        for key, count in backend.counts.items():
            donors.append(key)
            weights.append(count)
        total = sum(weights)

        def rewrite(_key: Hashable, fault_rng: random.Random) -> Hashable:
            ticket = fault_rng.randrange(total)
            for donor, weight in zip(donors, weights):
                ticket -= weight
                if ticket < 0:
                    return donor
            return donors[-1]  # unreachable; numerical safety

        changed = backend.corrupt_histogram(victims, rewrite, rng)
    else:
        protocol = simulator.protocol
        states = backend.states
        donor_states = iter(
            [
                protocol.copy_state(states[rng.randrange(len(states))])
                for _ in range(victims)
            ]
        )
        changed = backend.corrupt_agents(
            victims, lambda _state, _rng: next(donor_states), rng
        )
    return {"fault": "clone", "victims": victims, "changed": changed}


def _clock_phase_fault(
    simulator: "Simulator", victims: int, rng: random.Random
) -> Dict[str, Any]:
    """Shift victims' phase-clock counters by a random non-zero offset.

    The composed counting protocols gate their exactness argument on the
    mod-40 phase residue (:mod:`repro.counting.keys`): every consumer of the
    phase counter reads it modulo a divisor of
    :data:`~repro.counting.keys.PHASE_RESIDUE_MODULUS`.  This fault attacks
    exactly that quantity — each victim's phase is shifted by a uniform
    offset in ``{1, ..., 39}``, desynchronising it from its peers (healthy
    clocks stay within one phase of each other, Lemma 5) — which is what the
    stable hybrids' drift detection must catch.

    Under the batch backend the corruption goes through the key codecs:
    decode the reduced clock key, perturb the phase residue, re-encode.
    Under the agent backend the raw (unbounded) counter is shifted by the
    same offset law, which marginalises to the identical residue shift.
    """
    protocol = simulator.protocol
    probe = protocol.initial_state(0)
    clock = getattr(probe, "clock", None)
    if clock is None or not hasattr(clock, "phase"):
        raise ConfigurationError(
            f"clock-phase-corruption needs a protocol with a phase-clock "
            f"component; {protocol.name!r} has none"
        )
    backend = simulator.backend
    if isinstance(backend, BatchBackend):
        key = protocol.state_key(probe)
        # The composed protocols all carry the reduced clock key in slot 1
        # of their state key; refuse layouts this fault cannot decode.
        if (
            not isinstance(key, tuple)
            or len(key) < 2
            or key[1] != clock_key(probe.clock)
        ):
            raise ConfigurationError(
                f"clock-phase-corruption cannot locate the clock key in "
                f"{protocol.name!r} state keys (expected the reduced clock "
                f"key in slot 1)"
            )

        def rewrite(victim_key: Hashable, fault_rng: random.Random) -> Hashable:
            victim_clock = clock_from_key(victim_key[1])  # type: ignore[index]
            victim_clock.phase = (
                victim_clock.phase + fault_rng.randrange(1, PHASE_RESIDUE_MODULUS)
            ) % PHASE_RESIDUE_MODULUS
            return (victim_key[0], clock_key(victim_clock)) + tuple(victim_key[2:])  # type: ignore[index]

        changed = backend.corrupt_histogram(victims, rewrite, rng)
    else:

        def mutate(state: Any, fault_rng: random.Random) -> None:
            state.clock.phase += fault_rng.randrange(1, PHASE_RESIDUE_MODULUS)
            return None

        changed = backend.corrupt_agents(victims, mutate, rng)
    return {"fault": "clock-phase-corruption", "victims": victims, "changed": changed}


FAULTS: Dict[str, FaultModel] = {
    model.name: model
    for model in (
        FaultModel(
            "reset",
            "victims crash and rejoin fresh (lose all protocol state)",
            _reset_fault,
        ),
        FaultModel(
            "clone",
            "victims adopt a random donor's state (duplicates tokens)",
            _clone_fault,
        ),
        FaultModel(
            "clock-phase-corruption",
            "victims' phase-clock residues shift by a random offset (mod-40 gate)",
            _clock_phase_fault,
        ),
    )
}


def register_fault(model: FaultModel) -> None:
    """Register a custom fault model (e.g. a protocol-specific corruption)."""
    if model.name in FAULTS:
        raise ConfigurationError(f"fault model {model.name!r} already registered")
    FAULTS[model.name] = model


def resolve_fault(name: str) -> FaultModel:
    """Look up a fault model, with a helpful error for unknown names."""
    try:
        return FAULTS[name]
    except KeyError:
        known = ", ".join(sorted(FAULTS))
        raise ConfigurationError(
            f"unknown fault model {name!r}; registered models: {known}"
        ) from None


def fault_names() -> List[str]:
    """Registered fault-model names."""
    return list(FAULTS)

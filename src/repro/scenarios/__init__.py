"""Dynamic-population chaos scenarios (`repro.scenarios`).

The paper's counting protocols matter precisely because population sizes
change; this package perturbs *running* populations and measures recovery.
A declarative :class:`ScenarioSpec` (JSON round-trip) composes a registered
protocol with a timeline of events — agent churn (join/leave/replace, as
one-shot waves or Poisson arrival processes, with optional
detected-membership restarts), repeated fault campaigns (generalising the
one-shot ``FailureInjectionHook``), and adversarial scheduler
reconfiguration (partition/merge) — and the runner executes the grid over
population sizes, parameter variants, seeds, and *both* simulation
backends, recording per-event recovery times, post-churn output accuracy
against the new true ``n``, and conservation-invariant series (the counting
stack's token sum through churn).

On top of single scenarios, :mod:`repro.scenarios.search` turns the
subsystem into a chaos *recommender*: a :class:`SearchSpec` declares which
scenario dimension to attack (churn fraction, Poisson rate, event timing,
partition blocks...) and what guarantee must hold, and the
:class:`FrontierRunner` bisects — or, in multi-dimensional campaigns,
evolves — its way to the protocol's breaking point, recording every probe's
derived seeds for exact replay.

``repro-chaos`` is the console entry point (``repro-chaos search`` for
frontier searches); ``SCENARIO_<name>.json`` / ``FRONTIER_<name>.json`` the
artifacts.
"""

from .artifacts import (
    build_document,
    build_frontier_document,
    completed_cell_ids,
    frontier_json_path,
    load_document,
    load_frontier_document,
    merge_cells,
    scenario_json_path,
    write_frontier,
    write_scenario,
)
from .builtin import (
    builtin_scenario_names,
    builtin_scenarios,
    builtin_search_names,
    builtin_searches,
    resolve_builtin_scenario,
    resolve_builtin_search,
)
from .events import expand_events, resolve_fraction
from .faults import FAULTS, FaultModel, fault_names, register_fault, resolve_fault
from .metrics import (
    INVARIANTS,
    InvariantSpec,
    invariant_names,
    resolve_invariant,
    scenario_cell_stats,
    scenario_fits,
)
from .runner import InvariantTracker, ScenarioRunner, execute_scenario_cell
from .search import (
    DIMENSION_FIELDS,
    GUARANTEE_KINDS,
    SEARCH_STRATEGIES,
    DimensionSpec,
    FrontierRunner,
    GuaranteeSpec,
    SearchSpec,
    probe_base_seed,
    probe_scenario,
)
from .spec import EVENT_KINDS, EventSpec, ScenarioCell, ScenarioSpec

__all__ = [
    "build_document",
    "build_frontier_document",
    "completed_cell_ids",
    "frontier_json_path",
    "load_document",
    "load_frontier_document",
    "merge_cells",
    "scenario_json_path",
    "write_frontier",
    "write_scenario",
    "builtin_scenario_names",
    "builtin_scenarios",
    "builtin_search_names",
    "builtin_searches",
    "resolve_builtin_scenario",
    "resolve_builtin_search",
    "expand_events",
    "resolve_fraction",
    "FAULTS",
    "FaultModel",
    "fault_names",
    "register_fault",
    "resolve_fault",
    "INVARIANTS",
    "InvariantSpec",
    "invariant_names",
    "resolve_invariant",
    "scenario_cell_stats",
    "scenario_fits",
    "InvariantTracker",
    "ScenarioRunner",
    "execute_scenario_cell",
    "DIMENSION_FIELDS",
    "GUARANTEE_KINDS",
    "SEARCH_STRATEGIES",
    "DimensionSpec",
    "FrontierRunner",
    "GuaranteeSpec",
    "SearchSpec",
    "probe_base_seed",
    "probe_scenario",
    "EVENT_KINDS",
    "EventSpec",
    "ScenarioCell",
    "ScenarioSpec",
]

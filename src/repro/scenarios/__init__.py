"""Dynamic-population chaos scenarios (`repro.scenarios`).

The paper's counting protocols matter precisely because population sizes
change; this package perturbs *running* populations and measures recovery.
A declarative :class:`ScenarioSpec` (JSON round-trip) composes a registered
protocol with a timeline of events — agent churn (join/leave/replace, with
optional detected-membership restarts), repeated fault campaigns
(generalising the one-shot ``FailureInjectionHook``), and adversarial
scheduler reconfiguration (partition/merge) — and the runner executes the
grid over population sizes, parameter variants, seeds, and *both* simulation
backends, recording per-event recovery times, post-churn output accuracy
against the new true ``n``, and conservation-invariant series (the counting
stack's token sum through churn).

``repro-chaos`` is the console entry point; ``SCENARIO_<name>.json`` the
artifact.
"""

from .artifacts import build_document, load_document, scenario_json_path, write_scenario
from .builtin import builtin_scenario_names, builtin_scenarios, resolve_builtin_scenario
from .events import expand_events, resolve_fraction
from .faults import FAULTS, FaultModel, fault_names, register_fault, resolve_fault
from .metrics import (
    INVARIANTS,
    InvariantSpec,
    invariant_names,
    resolve_invariant,
    scenario_cell_stats,
    scenario_fits,
)
from .runner import InvariantTracker, ScenarioRunner, execute_scenario_cell
from .spec import EVENT_KINDS, EventSpec, ScenarioCell, ScenarioSpec

__all__ = [
    "build_document",
    "load_document",
    "scenario_json_path",
    "write_scenario",
    "builtin_scenario_names",
    "builtin_scenarios",
    "resolve_builtin_scenario",
    "expand_events",
    "resolve_fraction",
    "FAULTS",
    "FaultModel",
    "fault_names",
    "register_fault",
    "resolve_fault",
    "INVARIANTS",
    "InvariantSpec",
    "invariant_names",
    "resolve_invariant",
    "scenario_cell_stats",
    "scenario_fits",
    "InvariantTracker",
    "ScenarioRunner",
    "execute_scenario_cell",
    "EVENT_KINDS",
    "EventSpec",
    "ScenarioCell",
    "ScenarioSpec",
]

"""Expansion of declarative event specs into engine timeline events.

An :class:`~repro.scenarios.spec.EventSpec` is a schedule *template*
(relative fire times, fractional magnitudes, parameter references); this
module resolves it against a concrete cell — population size, parameter
variant, and run seed — into the :class:`~repro.engine.hooks.TimelineEvent`
objects the simulator executes.  Each occurrence gets a private random
stream derived from the run seed, so victim selection is reproducible and
independent of the simulation's own randomness.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Union

from ..engine.errors import ConfigurationError, SimulationError
from ..engine.hooks import TimelineEvent
from ..engine.rng import SeedLike, make_rng
from ..engine.scheduler import PartitionedScheduler
from ..engine.simulator import Simulator
from .faults import resolve_fault
from .spec import EventSpec

__all__ = ["expand_events", "resolve_fraction"]

#: Sanity bound on the expected number of arrivals a churn process may
#: expand into: a mutated rate/window combination beyond this would swamp the
#: timeline (and the artifact) with per-arrival events.
MAX_PROCESS_ARRIVALS = 10_000


def resolve_fraction(
    fraction: Optional[Union[float, str]], params: Dict[str, Any]
) -> Optional[float]:
    """Resolve a fraction literal or parameter reference against cell params."""
    if fraction is None:
        return None
    if isinstance(fraction, str):
        if fraction not in params:
            raise ConfigurationError(
                f"event fraction references unknown parameter {fraction!r}"
            )
        fraction = params[fraction]
    fraction = float(fraction)
    if not 0 < fraction <= 1:
        raise ConfigurationError("event fraction must lie in (0, 1]")
    return fraction


def _magnitude(
    spec: EventSpec, fraction: Optional[float], simulator: Simulator
) -> int:
    """Number of agents an event touches, resolved at fire time.

    Fractions apply to the population *at the moment the event fires* (churn
    compounds across a timeline); a resolved magnitude of at least 1 keeps
    small-n smoke grids meaningful.
    """
    if spec.count is not None:
        return spec.count
    assert fraction is not None  # enforced by EventSpec validation
    return max(1, round(fraction * simulator.n))


def _partition_scheduler(simulator: Simulator) -> PartitionedScheduler:
    scheduler = simulator.scheduler
    if not isinstance(scheduler, PartitionedScheduler):
        raise SimulationError(
            "partition/merge events need the simulator constructed with a "
            "PartitionedScheduler (the scenario runner does this when the "
            "timeline contains scheduler events)"
        )
    return scheduler


def _build_apply(
    spec: EventSpec,
    fraction: Optional[float],
    rng: random.Random,
):
    """The TimelineEvent.apply closure for one occurrence of ``spec``."""

    def apply(simulator: Simulator) -> Dict[str, Any]:
        backend = simulator.backend
        if spec.kind == "join":
            details = backend.join(_magnitude(spec, fraction, simulator))
        elif spec.kind == "leave":
            details = backend.leave(_magnitude(spec, fraction, simulator), rng)
        elif spec.kind == "replace":
            details = backend.replace(_magnitude(spec, fraction, simulator), rng)
        elif spec.kind == "restart":
            details = backend.restart_population()
        elif spec.kind == "corrupt":
            victims = min(_magnitude(spec, fraction, simulator), simulator.n)
            details = resolve_fault(spec.fault).apply(simulator, victims, rng)
        elif spec.kind == "partition":
            _partition_scheduler(simulator).set_blocks(spec.blocks)
            details = {"blocks": spec.blocks}
        elif spec.kind == "merge":
            _partition_scheduler(simulator).set_blocks(1)
            details = {"blocks": 1}
        else:  # pragma: no cover - EventSpec validation forbids this
            raise ConfigurationError(f"unknown event kind {spec.kind!r}")
        if spec.restart and spec.kind in ("join", "leave", "replace"):
            details = {**details, "restart": backend.restart_population()}
        return details

    return apply


def _expand_process(
    spec: EventSpec,
    fraction: Optional[float],
    base_at: int,
    n: int,
    seed: SeedLike,
    index: int,
) -> List[TimelineEvent]:
    """Draw one realisation of a Poisson churn process as timeline events.

    Arrivals follow a homogeneous Poisson process of ``spec.rate`` expected
    events per parallel-time unit (``n`` interactions) over the ``window``:
    inter-arrival gaps are i.i.d. exponentials drawn from a private stream
    derived from the run seed, so the realisation is reproducible and the
    count is ``Poisson(rate * window / n)`` by construction (no Poisson
    sampler needed, and no underflow for large means).
    """
    window = spec.window.budget(n)  # type: ignore[union-attr] - validated
    per_interaction = spec.rate / n  # type: ignore[operator]
    expected = per_interaction * window
    if expected > MAX_PROCESS_ARRIVALS:
        raise ConfigurationError(
            f"churn process expects ~{expected:.0f} arrivals "
            f"(rate={spec.rate}, window={window} interactions); the cap is "
            f"{MAX_PROCESS_ARRIVALS} — lower the rate or shorten the window"
        )
    arrival_rng = make_rng(seed, "scenario-process", index)
    events: List[TimelineEvent] = []
    at = arrival_rng.expovariate(per_interaction)
    occurrence = 0
    # 4x the cap bounds a pathological tail of the Poisson draw itself.
    while at < window and occurrence < 4 * MAX_PROCESS_ARRIVALS:
        events.append(
            TimelineEvent(
                at=base_at + int(round(at)),
                kind=spec.kind,
                label=f"{spec.label}#{occurrence + 1}",
                apply=_build_apply(
                    spec,
                    fraction,
                    make_rng(seed, "scenario-event", index, occurrence),
                ),
            )
        )
        occurrence += 1
        at += arrival_rng.expovariate(per_interaction)
    return events


def expand_events(
    events: List[EventSpec],
    n: int,
    params: Dict[str, Any],
    seed: SeedLike,
) -> List[TimelineEvent]:
    """Expand a scenario timeline for one concrete run.

    Fire times resolve against the *initial* population size ``n`` (the
    quantity the budget policy also uses); periodic specs expand into one
    event per occurrence.  Fraction parameter references resolve against
    ``params`` eagerly, so a malformed grid fails before any simulation.
    """
    timeline: List[TimelineEvent] = []
    for index, spec in enumerate(events):
        fraction = resolve_fraction(spec.fraction, params)
        base_at = (
            spec.at_interactions
            if spec.at_interactions is not None
            else spec.at.budget(n)
        )
        if spec.rate is not None:
            timeline.extend(
                _expand_process(spec, fraction, base_at, n, seed, index)
            )
            continue
        period = spec.every.budget(n) if spec.every is not None else 0
        for occurrence in range(spec.repeat):
            label = (
                spec.label if spec.repeat == 1 else f"{spec.label}#{occurrence + 1}"
            )
            timeline.append(
                TimelineEvent(
                    at=base_at + occurrence * period,
                    kind=spec.kind,
                    label=label,
                    apply=_build_apply(
                        spec,
                        fraction,
                        make_rng(seed, "scenario-event", index, occurrence),
                    ),
                )
            )
    return timeline

"""Execution of chaos scenarios, reusing the sweep fan-out machinery.

A scenario expands into cells (population size × parameter variant ×
backend); each cell runs its seeded repetitions in one worker task, fanned
out by the :class:`~repro.experiments.runner.SweepRunner` pool via the
executor/payloads extension points.  Everything crossing the process
boundary is the JSON form of the spec plus primitives, so the ``spawn``
start method works everywhere.

Each run drives a :class:`~repro.engine.simulator.Simulator` directly (not
the ``simulate`` convenience): the runner needs the live simulator to derive
population-size-dependent acceptance predicates after churn and to measure
the post-churn output accuracy against the *new* true ``n``.
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Dict, List, Optional

from ..engine.convergence import accuracy_fraction
from ..engine.hooks import CallbackHook, TimelineEvent
from ..engine.scheduler import PartitionedScheduler
from ..engine.simulator import Simulator
from ..experiments.registry import ProtocolEntry, resolve_protocol
from ..experiments.runner import SweepRunner, run_cell_seeds
from .events import expand_events
from .metrics import resolve_invariant, scenario_cell_stats
from .spec import ScenarioCell, ScenarioSpec

__all__ = [
    "ScenarioRunner",
    "execute_scenario_cell",
    "scenario_cell_payload",
    "InvariantTracker",
]


class InvariantTracker(CallbackHook):
    """Measure named invariants at the start, every event, and the end.

    The measurements accumulate in :attr:`records` as
    ``{"at", "when", "values"}`` entries; the per-event measurement is also
    attached to the engine's timeline event record (under ``"invariants"``)
    so the artifact shows each disturbance next to its conservation effect.
    """

    def __init__(self, names: List[str]) -> None:
        self._specs = [resolve_invariant(name) for name in names]
        self.records: List[Dict[str, Any]] = []
        super().__init__(
            on_start=self._measure_start,
            on_timeline_event=self._measure_event,
            on_end=self._measure_end,
        )

    def _values(self, simulator: Simulator) -> Dict[str, Any]:
        counts = simulator.state_key_counts()
        return {
            spec.name: spec.compute(simulator.protocol, counts)
            for spec in self._specs
        }

    def _measure(self, simulator: Simulator, when: str) -> Dict[str, Any]:
        entry = {
            "at": simulator.interactions,
            "when": when,
            "values": self._values(simulator),
        }
        self.records.append(entry)
        return entry

    def _measure_start(self, simulator: Simulator) -> None:
        self._measure(simulator, "start")

    def _measure_event(
        self, simulator: Simulator, event: TimelineEvent, record: Dict[str, Any]
    ) -> None:
        record["invariants"] = self._measure(simulator, f"after:{event.label}")[
            "values"
        ]

    def _measure_end(self, simulator: Simulator) -> None:
        self._measure(simulator, "end")


def _run_one(
    spec: ScenarioSpec,
    entry: ProtocolEntry,
    n: int,
    backend: str,
    params: Dict[str, Any],
    seed: int,
    max_wall_time_s: Optional[float],
) -> Dict[str, Any]:
    """Execute one seeded scenario run and return its augmented record."""
    protocol = entry.build(n, params)
    scheduler = PartitionedScheduler() if spec.uses_scheduler_events() else None
    tracker = InvariantTracker(spec.invariants)
    simulator = Simulator(
        protocol,
        n,
        seed=seed,
        scheduler=scheduler,
        hooks=[tracker],
        backend=backend,
        sampler=spec.sampler,
        accel=spec.accel,
    )
    convergence_factory = None
    if entry.convergence is not None:
        predicate_factory = entry.convergence

        def convergence_factory(sim: Simulator):
            # Re-derived after every event: acceptance tracks the new true n.
            return predicate_factory(sim.n, params)

    result = simulator.run(
        max_interactions=spec.budget.budget(n),
        convergence_factory=convergence_factory,
        check_interval=spec.check_interval(n),
        confirm_checks=spec.confirm_checks,
        timeline=expand_events(spec.events, n, params, seed),
        max_wall_time_s=max_wall_time_s,
    )
    run = result.as_json_dict()
    if entry.convergence is not None:
        run["post_accuracy"] = accuracy_fraction(
            simulator.output_counts(), entry.convergence(simulator.n, params)
        )
    else:
        run["post_accuracy"] = None
    run["invariants"] = tracker.records
    return run


def execute_scenario_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one scenario cell; the (spawn-safe) worker entry point.

    Mirrors :func:`repro.experiments.runner.execute_cell`: failures and
    wall-time budget overruns become the record's ``error`` field so a
    broken cell cannot take down the whole scenario.
    """
    started = time.perf_counter()
    record: Dict[str, Any] = {
        "cell_id": payload["cell_id"],
        "n": payload["n"],
        "backend": payload["backend"],
        "params": payload["params"],
        "seeds": payload["seeds"],
        "runs": [],
        "stats": None,
        "error": None,
    }
    try:
        spec = ScenarioSpec.from_dict(payload["spec"])
        entry = resolve_protocol(spec.protocol)

        def run_one(seed: Any, remaining: Optional[float]) -> Dict[str, Any]:
            return _run_one(
                spec,
                entry,
                payload["n"],
                payload["backend"],
                payload["params"],
                seed,
                remaining,
            )

        runs, error = run_cell_seeds(
            payload["cell_id"], payload["seeds"], spec.cell_timeout_s, started, run_one
        )
        record["runs"] = runs
        record["error"] = error
        if error is None:
            record["stats"] = scenario_cell_stats(payload["n"], runs)
    except Exception:  # noqa: BLE001 - captured into the artifact by design
        record["error"] = traceback.format_exc()
    record["wall_time_s"] = round(time.perf_counter() - started, 3)
    return record


def scenario_cell_payload(
    spec_dict: Dict[str, Any], cell: ScenarioCell
) -> Dict[str, Any]:
    """Everything a worker needs to run one scenario cell (plain primitives).

    The scenario half of the per-cell execute seam: payloads built here feed
    :func:`execute_scenario_cell` from the scenario runner, the frontier
    search's probe scheduling, and the job server alike.  ``spec_dict`` is
    ``spec.to_dict()`` — passed in pre-serialised so batch builders pay the
    conversion once.
    """
    return {
        "cell_id": cell.cell_id,
        "n": cell.n,
        "backend": cell.backend,
        "params": dict(cell.params),
        "seeds": list(cell.seeds),
        "spec": spec_dict,
    }


class ScenarioRunner(SweepRunner):
    """Fan scenario cells out over the shared multiprocessing pool.

    Plugs :func:`execute_scenario_cell` into
    :class:`~repro.experiments.runner.SweepRunner`'s executor/payloads
    extension points; everything else (spawn pool, serial fallback, progress
    lines, grid-order results) is inherited.
    """

    executor = staticmethod(execute_scenario_cell)

    def payloads(self, cells: List[ScenarioCell]) -> List[Dict[str, Any]]:
        spec_dict = self.spec.to_dict()
        return [scenario_cell_payload(spec_dict, cell) for cell in cells]

"""Adversarial scenario search: locate a protocol's robustness frontier.

A chaos scenario *describes* one disturbance; this module *searches* the
disturbance space for the boundary between survival and failure — the
largest perturbation a protocol provably survives and the smallest that
breaks its guarantee, in the spirit of chaos-engineering recommenders.

A :class:`SearchSpec` (JSON round-trip, like
:class:`~repro.scenarios.spec.ScenarioSpec`) declares:

* a **base scenario** that must expand to exactly one cell (one population
  size, one backend, no parameter grid) — the probe template;
* one or more **dimensions** — numeric fields of the scenario's events to
  mutate (churn fraction, process rate, event timing, campaign cadence,
  partition block count), each with a ``[low, high]`` box.  ``low`` is the
  *mild* end of every dimension by convention;
* a **guarantee** the protocol must uphold at each probe point —
  reconvergence within the scenario's budget, post-disturbance
  ``accuracy_fraction >= threshold``, or end-to-end conservation of a
  tracked invariant;
* a **strategy**: deterministic ``bisect`` over one dimension, or a small
  (mu + lambda) ``evolve`` loop for multi-dimensional campaigns that hunts
  the mildest breaking point.

Every probe's scenario seeds derive from the search's root seed and the
probe's *values* (not its visit order), so a probe replays bit-identically
in isolation — :func:`probe_scenario` rebuilds the exact one-cell scenario
for any history entry of a ``FRONTIER_<name>.json`` artifact.

The boundary located is the *empirical* frontier for the derived seeds: each
probe point is a deterministic function of the spec, so re-running the
search reproduces the identical frontier, while a different ``base_seed``
samples a fresh set of trajectories near the (stochastic) true transition.
"""

from __future__ import annotations

import math
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..engine.errors import ConfigurationError, ExperimentError
from ..engine.rng import SeedLike, derive_seed, make_rng
from ..experiments.runner import PoolExecutor, Progress
from ..obs.profile import profile_from_cells
from .metrics import resolve_invariant
from .runner import execute_scenario_cell, scenario_cell_payload
from .spec import ScenarioSpec

__all__ = [
    "DIMENSION_FIELDS",
    "GUARANTEE_KINDS",
    "SEARCH_STRATEGIES",
    "DimensionSpec",
    "GuaranteeSpec",
    "SearchSpec",
    "FrontierRunner",
    "probe_scenario",
    "probe_base_seed",
]

#: Event fields a search may mutate.  ``at_factor`` / ``every_factor``
#: scale the event's time policies (the paper-scale schedule knobs);
#: ``count`` and ``blocks`` are integers and get rounded per probe.
DIMENSION_FIELDS = ("fraction", "rate", "count", "at_factor", "every_factor", "blocks")

_INTEGER_FIELDS = ("count", "blocks")

#: Guarantee predicates a probe run must satisfy to count as survived.
GUARANTEE_KINDS = ("recovered", "accuracy", "invariant")

SEARCH_STRATEGIES = ("bisect", "evolve")


@dataclass
class DimensionSpec:
    """One mutated coordinate of the disturbance space.

    Attributes:
        event: Index of the mutated event in the scenario's timeline.
        dimension: Which numeric field of that event to mutate — one of
            :data:`DIMENSION_FIELDS`.
        low: Mild end of the search box (the perturbation closest to "no
            disturbance").
        high: Severe end of the search box.
    """

    event: int
    dimension: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.dimension not in DIMENSION_FIELDS:
            raise ConfigurationError(
                f"unknown search dimension {self.dimension!r}; expected one "
                f"of {DIMENSION_FIELDS}"
            )
        self.low = float(self.low)
        self.high = float(self.high)
        if not self.low < self.high:
            raise ConfigurationError(
                f"search dimension {self.dimension!r} needs low < high "
                f"(got [{self.low}, {self.high}])"
            )
        if self.dimension in _INTEGER_FIELDS and (
            self.low != int(self.low) or self.high != int(self.high)
        ):
            raise ConfigurationError(
                f"integer search dimension {self.dimension!r} needs integral "
                f"bounds"
            )

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DimensionSpec":
        if not isinstance(data, dict):
            raise ConfigurationError("each search dimension must be a JSON object")
        payload = dict(data)
        unknown = set(payload) - set(cls.__dataclass_fields__)
        if unknown:
            raise ConfigurationError(
                f"unknown search-dimension fields: {', '.join(sorted(unknown))}"
            )
        try:
            return cls(**payload)
        except TypeError as error:
            raise ConfigurationError(f"invalid search dimension: {error}") from None


@dataclass
class GuaranteeSpec:
    """The property a probe run must uphold to count as *survived*.

    Attributes:
        kind: One of :data:`GUARANTEE_KINDS` —

            * ``recovered``: the run reconverged within the scenario's
              interaction budget (the engine's final ``converged`` flag);
            * ``accuracy``: the post-disturbance output accuracy against the
              new true ``n`` reached at least ``threshold``;
            * ``invariant``: the named tracked invariant holds the same
              value at the run's start and end (end-to-end conservation).
        threshold: Minimum ``accuracy_fraction`` for ``accuracy``.
        invariant: Invariant name for ``invariant`` (must be tracked by the
            base scenario).
        min_rate: Fraction of a probe's seeded runs that must survive for
            the probe point itself to count as surviving (1.0 = all runs).
    """

    kind: str = "recovered"
    threshold: float = 1.0
    invariant: str = ""
    min_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in GUARANTEE_KINDS:
            raise ConfigurationError(
                f"unknown guarantee kind {self.kind!r}; expected one of "
                f"{GUARANTEE_KINDS}"
            )
        if self.kind == "accuracy" and not 0 < self.threshold <= 1:
            raise ConfigurationError("accuracy guarantee needs 0 < threshold <= 1")
        if self.kind == "invariant":
            if not self.invariant:
                raise ConfigurationError("invariant guarantee needs invariant=")
            resolve_invariant(self.invariant)
        if not 0 < self.min_rate <= 1:
            raise ConfigurationError("guarantee min_rate must lie in (0, 1]")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GuaranteeSpec":
        if not isinstance(data, dict):
            raise ConfigurationError("the search guarantee must be a JSON object")
        payload = dict(data)
        unknown = set(payload) - set(cls.__dataclass_fields__)
        if unknown:
            raise ConfigurationError(
                f"unknown guarantee fields: {', '.join(sorted(unknown))}"
            )
        try:
            return cls(**payload)
        except TypeError as error:
            raise ConfigurationError(f"invalid guarantee: {error}") from None


@dataclass
class SearchSpec:
    """A declarative robustness-frontier search.

    Attributes:
        name: Search name; determines the ``FRONTIER_<name>.json`` artifact.
        scenario: The one-cell base scenario every probe mutates.
        dimensions: Mutated coordinates (exactly one for ``bisect``).
        guarantee: Survival predicate evaluated on every probe run.
        strategy: ``bisect`` (deterministic interval halving; needs a
            frontier *crossing* between the box ends) or ``evolve``
            ((mu + lambda) hunt for the mildest breaking point).
        seeds_per_probe: Seeded repetitions per probe point.
        base_seed: Root seed; every probe's scenario seeds derive from it
            and the probe's values.
        tolerance: ``bisect`` stops once the bracketing interval is at most
            this wide.
        max_probes: Hard cap on distinct probe points (repeat visits hit
            the probe cache and are free).
        population: mu — survivors kept per ``evolve`` generation.
        offspring: lambda — mutants generated per ``evolve`` generation.
        generations: ``evolve`` generation count.
        mutation_scale: Gaussian mutation sigma as a fraction of each
            dimension's box width.
        probe_timeout_s: Wall-time budget per probe cell; also bounds the
            pool wait so a crashed worker is detected and retried instead of
            hanging the search.
        description: Free-form text carried into the artifact.
    """

    name: str
    scenario: ScenarioSpec
    dimensions: List[DimensionSpec]
    guarantee: GuaranteeSpec = field(default_factory=GuaranteeSpec)
    strategy: str = "bisect"
    seeds_per_probe: int = 3
    base_seed: SeedLike = 0
    tolerance: float = 0.02
    max_probes: int = 32
    population: int = 4
    offspring: int = 8
    generations: int = 6
    mutation_scale: float = 0.25
    probe_timeout_s: Optional[float] = 300.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a search needs a name")
        if not isinstance(self.scenario, ScenarioSpec):
            self.scenario = ScenarioSpec.from_dict(self.scenario)
        self.dimensions = [
            dim if isinstance(dim, DimensionSpec) else DimensionSpec.from_dict(dim)
            for dim in self.dimensions
        ]
        if not isinstance(self.guarantee, GuaranteeSpec):
            self.guarantee = GuaranteeSpec.from_dict(self.guarantee)
        if self.strategy not in SEARCH_STRATEGIES:
            raise ConfigurationError(
                f"unknown search strategy {self.strategy!r}; expected one of "
                f"{SEARCH_STRATEGIES}"
            )
        if not self.dimensions:
            raise ConfigurationError("a search needs at least one dimension")
        if self.strategy == "bisect" and len(self.dimensions) != 1:
            raise ConfigurationError(
                "bisect searches exactly one dimension; use strategy='evolve' "
                "for multi-dimensional campaigns"
            )
        if len(self.scenario.cells()) != 1:
            raise ConfigurationError(
                "a search's base scenario must expand to exactly one cell "
                "(one population size, one backend, no param_grid) — probes "
                "mutate that single cell"
            )
        if self.seeds_per_probe < 1:
            raise ConfigurationError("seeds_per_probe must be at least 1")
        if self.tolerance <= 0:
            raise ConfigurationError("tolerance must be positive")
        if self.max_probes < 3:
            raise ConfigurationError(
                "max_probes must be at least 3 (two endpoints plus one split)"
            )
        if self.strategy == "evolve":
            if self.population < 1 or self.offspring < 1 or self.generations < 1:
                raise ConfigurationError(
                    "evolve needs population, offspring, and generations >= 1"
                )
            if not 0 < self.mutation_scale <= 1:
                raise ConfigurationError("mutation_scale must lie in (0, 1]")
        if self.probe_timeout_s is not None and self.probe_timeout_s <= 0:
            raise ConfigurationError("probe_timeout_s must be positive")
        if (
            self.guarantee.kind == "invariant"
            and self.guarantee.invariant not in self.scenario.invariants
        ):
            raise ConfigurationError(
                f"the guarantee's invariant {self.guarantee.invariant!r} is "
                f"not tracked by the base scenario; add it to "
                f"scenario.invariants"
            )
        for dim in self.dimensions:
            self._validate_dimension(dim)
        # Both box ends must produce a *valid* scenario, so a search never
        # discovers a malformed probe mid-run.
        probe_scenario(self, [dim.low for dim in self.dimensions])
        probe_scenario(self, [dim.high for dim in self.dimensions])

    def _validate_dimension(self, dim: DimensionSpec) -> None:
        events = self.scenario.events
        if not 0 <= dim.event < len(events):
            raise ConfigurationError(
                f"search dimension references event {dim.event}, but the "
                f"scenario has {len(events)} event(s)"
            )
        event = events[dim.event]
        if dim.dimension == "fraction":
            if not isinstance(event.fraction, (int, float)):
                raise ConfigurationError(
                    f"event {dim.event} ({event.kind!r}) has no numeric "
                    f"fraction to mutate"
                )
        elif dim.dimension == "rate":
            if event.rate is None:
                raise ConfigurationError(
                    f"event {dim.event} ({event.kind!r}) is not a churn "
                    f"process; give it rate= and window= to search its rate"
                )
        elif dim.dimension == "count":
            if event.count is None:
                raise ConfigurationError(
                    f"event {dim.event} ({event.kind!r}) has no count to mutate"
                )
        elif dim.dimension == "at_factor":
            if event.at is None:
                raise ConfigurationError(
                    f"event {dim.event} ({event.kind!r}) uses at_interactions; "
                    f"at_factor needs an at= time policy"
                )
        elif dim.dimension == "every_factor":
            if event.every is None:
                raise ConfigurationError(
                    f"event {dim.event} ({event.kind!r}) is not periodic; "
                    f"every_factor needs every="
                )
        elif dim.dimension == "blocks":
            if event.kind != "partition":
                raise ConfigurationError(
                    f"blocks only applies to partition events, not "
                    f"{event.kind!r}"
                )

    # ------------------------------------------------------------------ JSON
    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SearchSpec":
        if not isinstance(data, dict):
            raise ConfigurationError("a search spec must be a JSON object")
        payload = dict(data)
        unknown = set(payload) - set(cls.__dataclass_fields__)
        if unknown:
            raise ConfigurationError(
                f"unknown search-spec fields: {', '.join(sorted(unknown))}"
            )
        try:
            return cls(**payload)
        except TypeError as error:
            raise ConfigurationError(f"invalid search spec: {error}") from None

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SearchSpec":
        import json

        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"invalid search-spec JSON: {error}") from None
        return cls.from_dict(data)


# --------------------------------------------------------------------------
# Probe construction
# --------------------------------------------------------------------------


def _canonical_values(values: Sequence[float]) -> str:
    """A stable textual key for a probe point (used for seeds and caching)."""
    return repr(tuple(float(value) for value in values))


def probe_base_seed(spec: SearchSpec, values: Sequence[float]) -> int:
    """The probe's scenario root seed, derived from its *values*.

    Seeding by value (not by visit order) makes probes path-independent:
    any probe in a frontier artifact replays bit-identically on its own,
    regardless of the search trajectory that reached it.
    """
    return derive_seed(
        spec.base_seed, "frontier", spec.name, _canonical_values(values)
    )


def probe_scenario(spec: SearchSpec, values: Sequence[float]) -> ScenarioSpec:
    """The concrete one-cell scenario for one probe point.

    This is also the replay entry point: feed it the ``values`` recorded in
    a frontier artifact's history and run the returned scenario (e.g. via
    ``repro-chaos --spec``) to reproduce that probe exactly.
    """
    if len(values) != len(spec.dimensions):
        raise ConfigurationError(
            f"probe has {len(values)} values for {len(spec.dimensions)} "
            f"dimension(s)"
        )
    base = spec.scenario.to_dict()
    for dim, value in zip(spec.dimensions, values):
        event = base["events"][dim.event]
        if dim.dimension == "at_factor":
            event["at"] = {**event["at"], "factor": float(value)}
        elif dim.dimension == "every_factor":
            event["every"] = {**event["every"], "factor": float(value)}
        elif dim.dimension in _INTEGER_FIELDS:
            event[dim.dimension] = int(round(value))
        else:
            event[dim.dimension] = float(value)
    base["name"] = f"{spec.name}-probe"
    base["seeds_per_cell"] = spec.seeds_per_probe
    base["base_seed"] = probe_base_seed(spec, values)
    if spec.probe_timeout_s is not None:
        base["cell_timeout_s"] = spec.probe_timeout_s
    return ScenarioSpec.from_dict(base)


# --------------------------------------------------------------------------
# Guarantee evaluation
# --------------------------------------------------------------------------


def _run_survives(guarantee: GuaranteeSpec, run: Dict[str, Any]) -> bool:
    if guarantee.kind == "recovered":
        return bool(run.get("converged"))
    if guarantee.kind == "accuracy":
        accuracy = run.get("post_accuracy")
        return accuracy is not None and accuracy >= guarantee.threshold
    # invariant: the tracked series must end where it started.
    records = run.get("invariants") or []
    values = [
        entry["values"][guarantee.invariant]
        for entry in records
        if guarantee.invariant in (entry.get("values") or {})
    ]
    if len(values) < 2:
        return False
    return values[0] == values[-1]


def _trim_run(guarantee: GuaranteeSpec, run: Dict[str, Any]) -> Dict[str, Any]:
    """The per-run evidence embedded in the frontier history (kept small)."""
    return {
        "seed": run.get("seed"),
        "converged": run.get("converged"),
        "post_accuracy": run.get("post_accuracy"),
        "stopped_reason": run.get("stopped_reason"),
        "interactions": run.get("interactions"),
        "survived": _run_survives(guarantee, run),
    }


# --------------------------------------------------------------------------
# The search driver
# --------------------------------------------------------------------------


class FrontierRunner:
    """Execute a :class:`SearchSpec` and record its probe history.

    Probes are scheduled as ordinary scenario cells on the shared
    :class:`~repro.experiments.runner.PoolExecutor` (the same spawn-safe
    machinery the sweep and scenario runners use), with per-probe
    retry-on-worker-crash and wall-time budgets — a pathological probe
    fails loudly instead of hanging the search.

    A probe cell that reports an *error* (protocol crash, budget-policy
    explosion, wall-time overrun) aborts the search with
    :class:`~repro.engine.errors.ExperimentError`: errored probes carry no
    survival information, and silently skipping one would corrupt the
    frontier.

    Args:
        spec: The search to run.
        workers: Worker process count (``None``: all cores; below 2 runs
            probes serially in-process).
        progress: Optional line-oriented progress callback.
        executor: Test seam — the cell executor; defaults to
            :func:`~repro.scenarios.runner.execute_scenario_cell`.
        pool_factory: Test seam forwarded to :class:`PoolExecutor`.
        retries: Re-submissions per lost worker task.
        pool: An existing :class:`PoolExecutor` to schedule probes on
            instead of creating one — how the job server runs searches on
            its shared pool.  A borrowed pool is *not* closed by
            :meth:`run`; its owner keeps that responsibility.
        should_abort: Optional zero-argument callable polled before every
            probe; returning ``True`` aborts the search with
            :class:`~repro.engine.errors.ExperimentError` (the server's
            job-cancellation hook).
    """

    def __init__(
        self,
        spec: SearchSpec,
        workers: Optional[int] = None,
        progress: Progress = None,
        executor: Callable[[Dict[str, Any]], Dict[str, Any]] = execute_scenario_cell,
        pool_factory: Optional[Callable[[int], Any]] = None,
        retries: int = 1,
        pool: Optional[PoolExecutor] = None,
        should_abort: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.spec = spec
        self.progress = progress
        self.history: List[Dict[str, Any]] = []
        self._cache: Dict[str, Dict[str, Any]] = {}
        self._executor = executor
        self._should_abort = should_abort
        self._owns_pool = pool is None
        if pool is not None:
            self._pool = pool
        else:
            self._pool = PoolExecutor(
                executor,
                workers=workers,
                retries=retries,
                progress=progress,
                pool_factory=pool_factory,
            )
        self.workers = self._pool.workers

    def _report(self, line: str) -> None:
        if self.progress:
            self.progress(line)

    # ----------------------------------------------------------------- probes
    def run_probe(self, values: Sequence[float]) -> Dict[str, Any]:
        """Run (or recall) one probe point; returns its history entry."""
        key = _canonical_values(values)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if self._should_abort is not None and self._should_abort():
            raise ExperimentError(f"search {self.spec.name!r} aborted")
        if len(self._cache) >= self.spec.max_probes:
            raise ExperimentError(
                f"search {self.spec.name!r} exceeded max_probes="
                f"{self.spec.max_probes}"
            )
        scenario = probe_scenario(self.spec, values)
        cell = scenario.cells()[0]
        payload = scenario_cell_payload(scenario.to_dict(), cell)
        timeout = None
        if self.spec.probe_timeout_s is not None:
            # Grace over the in-worker budget so the worker's own timeout
            # record (which preserves completed runs) wins when possible.
            timeout = self.spec.probe_timeout_s + 30.0
        started = time.perf_counter()
        record = self._pool.map(
            [payload], timeout_s=timeout, executor=self._executor
        )[0]
        if record.get("error"):
            raise ExperimentError(
                f"probe {key} of search {self.spec.name!r} failed: "
                f"{str(record['error']).strip().splitlines()[-1]}"
            )
        runs = record.get("runs") or []
        survived = sum(1 for run in runs if _run_survives(self.spec.guarantee, run))
        broken = len(runs) - survived
        survives = bool(runs) and survived / len(runs) >= self.spec.guarantee.min_rate
        entry = {
            "probe": len(self._cache),
            "values": [float(value) for value in values],
            "cell_id": cell.cell_id,
            "base_seed": probe_base_seed(self.spec, values),
            "seeds": list(cell.seeds),
            "survived_runs": survived,
            "broken_runs": broken,
            "survives": survives,
            "runs": [_trim_run(self.spec.guarantee, run) for run in runs],
            # The full run records are trimmed out of the history, so the
            # probe keeps its telemetry pre-aggregated into one profile.
            "telemetry": profile_from_cells([record]),
            "wall_time_s": round(time.perf_counter() - started, 3),
        }
        self._cache[key] = entry
        self.history.append(entry)
        self._report(
            f"  probe {entry['probe']:2d} {key}: "
            f"{survived}/{len(runs)} survived -> "
            f"{'SURVIVES' if survives else 'BROKEN'} "
            f"({entry['wall_time_s']:.1f}s)"
        )
        return entry

    # ------------------------------------------------------------- strategies
    def run(self) -> Dict[str, Any]:
        """Run the search; returns the strategy's result summary."""
        try:
            if self.spec.strategy == "bisect":
                return self._bisect()
            return self._evolve()
        finally:
            if self._owns_pool:
                self._pool.close()

    def _bisect(self) -> Dict[str, Any]:
        """Deterministic interval halving over the single dimension.

        Both box ends are probed first to *orient* the frontier: a guarantee
        may break at the severe end (the usual case — e.g. an epidemic
        drowning in churn) or at the mild end (e.g. a post-churn recount
        that only fits its leftover budget when the churn removed enough
        agents).  The invariant maintained is that the bracket always has
        one surviving and one broken end; each step halves its width, so the
        recorded widths shrink monotonically to the declared tolerance.
        """
        dim = self.spec.dimensions[0]
        low_probe = self.run_probe([dim.low])
        high_probe = self.run_probe([dim.high])
        if low_probe["survives"] == high_probe["survives"]:
            outcome = "all-survive" if low_probe["survives"] else "all-break"
            self._report(f"no frontier in [{dim.low}, {dim.high}]: {outcome}")
            return {
                "status": "no-frontier",
                "outcome": outcome,
                "orientation": None,
                "critical": None,
                "bracket": [dim.low, dim.high],
                "tolerance": self.spec.tolerance,
                "probes": len(self.history),
            }
        orientation = "increasing" if low_probe["survives"] else "decreasing"
        surviving_end = dim.low if low_probe["survives"] else dim.high
        broken_end = dim.high if low_probe["survives"] else dim.low
        for probe in (low_probe, high_probe):
            probe["bracket_after"] = sorted([surviving_end, broken_end])
        status = "bracketed"
        while abs(broken_end - surviving_end) > self.spec.tolerance:
            if len(self._cache) >= self.spec.max_probes:
                status = "budget-exhausted"
                break
            midpoint = (surviving_end + broken_end) / 2
            probe = self.run_probe([midpoint])
            if probe["survives"]:
                surviving_end = midpoint
            else:
                broken_end = midpoint
            probe["bracket_after"] = sorted([surviving_end, broken_end])
        critical = (surviving_end + broken_end) / 2
        self._report(
            f"frontier {self.spec.name!r}: critical {dim.dimension} ~ "
            f"{critical:.6g} ({orientation}; survives at {surviving_end:.6g}, "
            f"breaks at {broken_end:.6g}; {len(self.history)} probes)"
        )
        return {
            "status": status,
            "orientation": orientation,
            "critical": critical,
            "survived_frontier": surviving_end,
            "broken_frontier": broken_end,
            "bracket": sorted([surviving_end, broken_end]),
            "tolerance": self.spec.tolerance,
            "probes": len(self.history),
        }

    # -------------------------------------------------------------- evolution
    def _severity(self, values: Sequence[float]) -> float:
        """Normalised distance from the mild corner (rms over dimensions)."""
        total = 0.0
        for dim, value in zip(self.spec.dimensions, values):
            span = dim.high - dim.low
            total += ((value - dim.low) / span) ** 2
        return math.sqrt(total / len(self.spec.dimensions))

    def _fitness(self, entry: Dict[str, Any]) -> float:
        """Lower is better: mildest breaking point wins.

        Broken probes score their severity in ``[0, 1]``; surviving probes
        score ``2 - severity`` in ``[1, 2]`` — always worse than any broken
        probe, but severe survivors (closest to flipping) outrank mild ones,
        which keeps selection pressure pointing at the frontier even before
        the first break is found.
        """
        severity = self._severity(entry["values"])
        return severity if not entry["survives"] else 2.0 - severity

    def _evolve(self) -> Dict[str, Any]:
        """(mu + lambda) hunt for the mildest guarantee-breaking point."""
        spec = self.spec
        rng = make_rng(spec.base_seed, "frontier-evolve", spec.name)
        dims = spec.dimensions

        def clamp(value: float, dim: DimensionSpec) -> float:
            return min(dim.high, max(dim.low, value))

        seeds: List[List[float]] = [
            [dim.low for dim in dims],
            [dim.high for dim in dims],
        ]
        while len(seeds) < spec.population and len(seeds) < spec.max_probes:
            seeds.append(
                [dim.low + rng.random() * (dim.high - dim.low) for dim in dims]
            )
        population = [self.run_probe(point) for point in seeds]
        generations_run = 0
        exhausted = False
        for _generation in range(spec.generations):
            offspring: List[Dict[str, Any]] = []
            for _child in range(spec.offspring):
                if len(self._cache) >= spec.max_probes:
                    exhausted = True
                    break
                parent = population[rng.randrange(len(population))]
                child = [
                    clamp(
                        value
                        + rng.gauss(0.0, spec.mutation_scale * (dim.high - dim.low)),
                        dim,
                    )
                    for dim, value in zip(dims, parent["values"])
                ]
                offspring.append(self.run_probe(child))
            generations_run += 1
            merged = {id(entry): entry for entry in population + offspring}
            population = sorted(merged.values(), key=self._fitness)[
                : spec.population
            ]
            if exhausted:
                break
        broken = [entry for entry in self.history if not entry["survives"]]
        best = min(broken, key=lambda entry: self._severity(entry["values"]), default=None)
        survivors = [entry for entry in self.history if entry["survives"]]
        hardiest = max(
            survivors, key=lambda entry: self._severity(entry["values"]), default=None
        )
        status = "frontier-point" if best is not None else "no-frontier"
        if best is not None:
            self._report(
                f"frontier {spec.name!r}: mildest break at "
                f"{best['values']} (severity {self._severity(best['values']):.3f}, "
                f"{len(self.history)} probes)"
            )
        else:
            self._report(
                f"no break found in {len(self.history)} probes "
                f"(guarantee holds across the searched box)"
            )
        return {
            "status": status,
            "critical": best["values"] if best else None,
            "critical_severity": self._severity(best["values"]) if best else None,
            "survived_frontier": hardiest["values"] if hardiest else None,
            "generations": generations_run,
            "probes": len(self.history),
            "tolerance": spec.tolerance,
        }

"""``repro-chaos`` console entry point.

Runs a chaos scenario (a builtin or a JSON spec), fans cells out across
worker processes, and writes ``SCENARIO_<name>.json``.

Usage::

    repro-chaos --list                      # enumerate builtin scenarios
    repro-chaos                             # run the headline recount-churn
    repro-chaos --builtin epidemic-rejoin   # run another builtin
    repro-chaos --smoke                     # bounded CI grid
    repro-chaos --spec my_scenario.json     # run a custom spec
    repro-chaos --dump-spec recount-churn   # print a builtin as JSON
    repro-chaos --workers 4 --seed 7 --output-dir results/
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from ..engine.errors import ReproError
from .artifacts import build_document, write_scenario
from .builtin import builtin_scenarios, resolve_builtin_scenario
from .faults import FAULTS
from .metrics import INVARIANTS
from .runner import ScenarioRunner
from .spec import ScenarioSpec

__all__ = ["main"]

HEADLINE_BUILTIN = "recount-churn"
SMOKE_BUILTIN = "recount-smoke"


def _load_spec(args: argparse.Namespace) -> ScenarioSpec:
    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec = ScenarioSpec.from_json(handle.read())
    elif args.smoke:
        spec = resolve_builtin_scenario(SMOKE_BUILTIN)
    else:
        spec = resolve_builtin_scenario(args.builtin)
    if args.seed is not None:
        spec.base_seed = args.seed
    if args.sampler is not None:
        spec.sampler = args.sampler
    if args.accel is not None:
        spec.accel = args.accel
    return spec


def _print_listing() -> None:
    print("builtin scenarios:")
    for name, spec in builtin_scenarios().items():
        grid = "x".join(str(n) for n in spec.ns)
        backends = ",".join(spec.backends)
        print(
            f"  {name:20s} {spec.protocol:24s} n={grid}  backends={backends}  "
            f"events={len(spec.events)}"
        )
        if spec.description:
            print(f"  {'':20s} {spec.description}")
    print("fault models:")
    for name, model in FAULTS.items():
        print(f"  {name:20s} {model.summary}")
    print("invariants:")
    for name, invariant in INVARIANTS.items():
        print(f"  {name:20s} {invariant.summary}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description=(
            "Run dynamic-population chaos scenarios (churn, fault campaigns, "
            "partitions) and measure protocol recovery."
        ),
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--builtin",
        default=HEADLINE_BUILTIN,
        help=f"builtin scenario to run (default: {HEADLINE_BUILTIN}; see --list)",
    )
    source.add_argument("--spec", help="path of a JSON scenario spec to run")
    source.add_argument(
        "--smoke",
        action="store_true",
        help=f"run the bounded CI grid (builtin {SMOKE_BUILTIN!r})",
    )
    source.add_argument(
        "--dump-spec",
        metavar="NAME",
        help="print a builtin spec as JSON (a starting point for --spec) and exit",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list builtin scenarios, fault models, and invariants, then exit",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: all cores; 1 forces serial execution)",
    )
    parser.add_argument(
        "--output-dir",
        default=".",
        help="directory for SCENARIO_* artifacts (default: .)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the spec's root seed"
    )
    parser.add_argument(
        "--sampler",
        choices=["auto", "scan", "alias", "fenwick", "vector"],
        default=None,
        help="override the spec's batch-backend sampling strategy",
    )
    parser.add_argument(
        "--accel",
        choices=["auto", "numpy", "python"],
        default=None,
        help=(
            "override the spec's batch-backend acceleration path "
            "(auto: NumPy when available, pure Python otherwise)"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress output"
    )
    args = parser.parse_args(argv)

    if args.list:
        _print_listing()
        return 0
    if args.dump_spec:
        try:
            print(resolve_builtin_scenario(args.dump_spec).to_json())
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        return 0

    try:
        spec = _load_spec(args)
    except (OSError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    progress = None if args.quiet else lambda line: print(line, flush=True)
    started = time.perf_counter()
    runner = ScenarioRunner(spec, workers=args.workers, progress=progress)
    if progress:
        total = len(spec.cells())
        progress(
            f"scenario {spec.name!r}: protocol={spec.protocol} cells={total} "
            f"seeds/cell={spec.seeds_per_cell} backends={','.join(spec.backends)} "
            f"events={len(spec.events)}"
        )
    cells = runner.run()
    document = build_document(spec, cells, workers=runner.workers)
    paths = write_scenario(document, args.output_dir, spec)
    elapsed = time.perf_counter() - started

    for backend, fit in (document["fits"].get("recovery_interactions") or {}).items():
        if fit:
            print(
                f"recovery fit [{backend}]: interactions-to-reconverge ~ "
                f"n^{fit['exponent']:.3f} (r^2 {fit['r_squared']:.4f}, "
                f"{fit['points']} sizes)"
            )
    print(
        f"wrote {paths['json']} ({len(cells)} cells, {elapsed:.1f}s)"
    )
    failed = document["failed_cells"]
    if failed:
        print(f"FAILED cells: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

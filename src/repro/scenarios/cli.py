"""``repro-chaos`` console entry point.

Runs a chaos scenario (a builtin or a JSON spec), fans cells out across
worker processes, and writes ``SCENARIO_<name>.json``; the ``search``
subcommand runs an adversarial frontier search and writes
``FRONTIER_<name>.json``.

Usage::

    repro-chaos --list                      # enumerate builtin scenarios
    repro-chaos                             # run the headline recount-churn
    repro-chaos --builtin epidemic-rejoin   # run another builtin
    repro-chaos --smoke                     # bounded CI grid
    repro-chaos --spec my_scenario.json     # run a custom spec
    repro-chaos --resume                    # skip cells already in the artifact
    repro-chaos --dump-spec recount-churn   # print a builtin as JSON
    repro-chaos --workers 4 --seed 7 --output-dir results/

    repro-chaos search --list               # enumerate builtin searches
    repro-chaos search                      # run the headline epidemic-churn
    repro-chaos search --builtin backup-recount
    repro-chaos search --smoke              # bounded CI frontier
    repro-chaos search --spec my_search.json
    repro-chaos search --dump-spec epidemic-churn
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from ..engine.errors import ExperimentError, ReproError
from ..obs.profile import render_profile, write_profile
from .artifacts import (
    build_document,
    build_frontier_document,
    completed_cell_ids,
    load_document,
    merge_cells,
    scenario_json_path,
    write_frontier,
    write_scenario,
)
from .builtin import (
    builtin_scenarios,
    builtin_searches,
    resolve_builtin_scenario,
    resolve_builtin_search,
)
from .faults import FAULTS
from .metrics import INVARIANTS
from .runner import ScenarioRunner
from .search import FrontierRunner, SearchSpec
from .spec import ScenarioSpec

__all__ = ["main", "search_main"]

HEADLINE_BUILTIN = "recount-churn"
SMOKE_BUILTIN = "recount-smoke"
HEADLINE_SEARCH = "epidemic-churn"
SMOKE_SEARCH = "search-smoke"


def _load_spec(args: argparse.Namespace) -> ScenarioSpec:
    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec = ScenarioSpec.from_json(handle.read())
    elif args.smoke:
        spec = resolve_builtin_scenario(SMOKE_BUILTIN)
    else:
        spec = resolve_builtin_scenario(args.builtin)
    if args.seed is not None:
        spec.base_seed = args.seed
    if args.sampler is not None:
        spec.sampler = args.sampler
    if args.accel is not None:
        spec.accel = args.accel
    return spec


def _print_listing() -> None:
    print("builtin scenarios:")
    for name, spec in builtin_scenarios().items():
        grid = "x".join(str(n) for n in spec.ns)
        backends = ",".join(spec.backends)
        print(
            f"  {name:20s} {spec.protocol:24s} n={grid}  backends={backends}  "
            f"events={len(spec.events)}"
        )
        if spec.description:
            print(f"  {'':20s} {spec.description}")
    print("fault models:")
    for name, model in FAULTS.items():
        print(f"  {name:20s} {model.summary}")
    print("invariants:")
    for name, invariant in INVARIANTS.items():
        print(f"  {name:20s} {invariant.summary}")


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "search":
        return search_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description=(
            "Run dynamic-population chaos scenarios (churn, fault campaigns, "
            "partitions) and measure protocol recovery.  The 'search' "
            "subcommand bisects/evolves a scenario dimension to find the "
            "protocol's breaking point (see: repro-chaos search --help)."
        ),
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--builtin",
        default=HEADLINE_BUILTIN,
        help=f"builtin scenario to run (default: {HEADLINE_BUILTIN}; see --list)",
    )
    source.add_argument("--spec", help="path of a JSON scenario spec to run")
    source.add_argument(
        "--smoke",
        action="store_true",
        help=f"run the bounded CI grid (builtin {SMOKE_BUILTIN!r})",
    )
    source.add_argument(
        "--dump-spec",
        metavar="NAME",
        help="print a builtin spec as JSON (a starting point for --spec) and exit",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list builtin scenarios, fault models, and invariants, then exit",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already completed in the existing SCENARIO_*.json artifact",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: all cores; 1 forces serial execution)",
    )
    parser.add_argument(
        "--output-dir",
        default=".",
        help="directory for SCENARIO_* artifacts (default: .)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the spec's root seed"
    )
    parser.add_argument(
        "--sampler",
        choices=["auto", "scan", "alias", "fenwick", "vector"],
        default=None,
        help="override the spec's batch-backend sampling strategy",
    )
    parser.add_argument(
        "--accel",
        choices=["auto", "numpy", "python"],
        default=None,
        help=(
            "override the spec's batch-backend acceleration path "
            "(auto: NumPy when available, pure Python otherwise)"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print the per-phase time breakdown aggregated from run "
            "telemetry and write PROFILE_<name>.json"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress output"
    )
    args = parser.parse_args(argv)

    if args.list:
        _print_listing()
        return 0
    if args.dump_spec:
        try:
            print(resolve_builtin_scenario(args.dump_spec).to_json())
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        return 0

    try:
        spec = _load_spec(args)
    except (OSError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    progress = None if args.quiet else lambda line: print(line, flush=True)
    started = time.perf_counter()

    previous = None
    skip: set = set()
    if args.resume:
        try:
            previous = load_document(scenario_json_path(args.output_dir, spec))
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        skip = completed_cell_ids(previous, spec)

    runner = ScenarioRunner(spec, workers=args.workers, progress=progress)
    if progress:
        total = len(spec.cells())
        progress(
            f"scenario {spec.name!r}: protocol={spec.protocol} cells={total} "
            f"seeds/cell={spec.seeds_per_cell} backends={','.join(spec.backends)} "
            f"events={len(spec.events)}"
        )
    fresh = runner.run(skip_cell_ids=skip)
    cells = merge_cells(previous, fresh, spec)
    document = build_document(spec, cells, workers=runner.workers)
    paths = write_scenario(document, args.output_dir, spec)
    elapsed = time.perf_counter() - started

    for backend, fit in (document["fits"].get("recovery_interactions") or {}).items():
        if fit:
            print(
                f"recovery fit [{backend}]: interactions-to-reconverge ~ "
                f"n^{fit['exponent']:.3f} (r^2 {fit['r_squared']:.4f}, "
                f"{fit['points']} sizes)"
            )
    if args.profile:
        print(render_profile(document["telemetry"], title=spec.name))
        print(
            f"wrote {write_profile(document['telemetry'], args.output_dir, spec.name)}"
        )
    print(
        f"wrote {paths['json']} ({len(cells)} cells, {len(fresh)} run now, "
        f"{len(skip)} resumed, {elapsed:.1f}s)"
    )
    failed = document["failed_cells"]
    if failed:
        print(f"FAILED cells: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


# --------------------------------------------------------------------------
# repro-chaos search
# --------------------------------------------------------------------------


def _print_search_listing() -> None:
    print("builtin searches:")
    for name, spec in builtin_searches().items():
        dims = ",".join(
            f"{spec.scenario.events[dim.event].kind}.{dim.dimension}"
            f"[{dim.low:g},{dim.high:g}]"
            for dim in spec.dimensions
        )
        print(
            f"  {name:20s} {spec.scenario.protocol:24s} "
            f"strategy={spec.strategy}  dims={dims}"
        )
        if spec.description:
            print(f"  {'':20s} {spec.description}")


def _load_search_spec(args: argparse.Namespace) -> SearchSpec:
    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec = SearchSpec.from_json(handle.read())
    elif args.smoke:
        spec = resolve_builtin_search(SMOKE_SEARCH)
    else:
        spec = resolve_builtin_search(args.builtin)
    if args.seed is not None:
        spec.base_seed = args.seed
    return spec


def _summarise_result(spec: SearchSpec, result: dict) -> str:
    status = result.get("status")
    labels = [
        f"{spec.scenario.events[dim.event].kind}.{dim.dimension}"
        for dim in spec.dimensions
    ]

    def point(values: object) -> str:
        if not isinstance(values, (list, tuple)):
            return str(values)
        return ", ".join(
            f"{label}={value:g}" for label, value in zip(labels, values)
        )

    if status in ("bracketed", "budget-exhausted"):
        suffix = " [probe budget exhausted]" if status == "budget-exhausted" else ""
        return (
            f"frontier ({result['orientation']}): critical "
            f"{point([result['critical']])} "
            f"(bracket [{result['bracket'][0]:g}, {result['bracket'][1]:g}], "
            f"tolerance {spec.tolerance:g}){suffix}"
        )
    if status == "frontier-point":
        return (
            f"mildest breaking point: {point(result['critical'])} "
            f"(severity {result['critical_severity']:.3f})"
        )
    if status == "no-frontier":
        return f"no frontier in the search box ({result.get('outcome')})"
    return f"status: {status}"


def search_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-chaos search",
        description=(
            "Find a protocol's breaking point: bisect (or evolve over) a "
            "chaos-scenario dimension until the survival guarantee flips, "
            "and record every probe for exact replay."
        ),
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--builtin",
        default=HEADLINE_SEARCH,
        help=f"builtin search to run (default: {HEADLINE_SEARCH}; see --list)",
    )
    source.add_argument("--spec", help="path of a JSON search spec to run")
    source.add_argument(
        "--smoke",
        action="store_true",
        help=f"run the bounded CI frontier (builtin {SMOKE_SEARCH!r})",
    )
    source.add_argument(
        "--dump-spec",
        metavar="NAME",
        help="print a builtin search as JSON (a starting point for --spec) and exit",
    )
    parser.add_argument(
        "--list", action="store_true", help="list builtin searches, then exit"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: all cores; 1 forces serial execution)",
    )
    parser.add_argument(
        "--output-dir",
        default=".",
        help="directory for FRONTIER_* artifacts (default: .)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the spec's root seed"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print the per-phase time breakdown aggregated over all probes "
            "and write PROFILE_<name>.json"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-probe progress output"
    )
    args = parser.parse_args(argv)

    if args.list:
        _print_search_listing()
        return 0
    if args.dump_spec:
        try:
            print(resolve_builtin_search(args.dump_spec).to_json())
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        return 0

    try:
        spec = _load_search_spec(args)
    except (OSError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    progress = None if args.quiet else lambda line: print(line, flush=True)
    started = time.perf_counter()
    runner = FrontierRunner(spec, workers=args.workers, progress=progress)
    if progress:
        progress(
            f"search {spec.name!r}: protocol={spec.scenario.protocol} "
            f"strategy={spec.strategy} dims={len(spec.dimensions)} "
            f"seeds/probe={spec.seeds_per_probe} "
            f"guarantee={spec.guarantee.kind}"
        )
    try:
        result = runner.run()
    except ExperimentError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    document = build_frontier_document(
        spec, result, runner.history, workers=runner.workers
    )
    paths = write_frontier(document, args.output_dir, spec)
    elapsed = time.perf_counter() - started

    print(_summarise_result(spec, result))
    if args.profile:
        print(render_profile(document["telemetry"], title=spec.name))
        print(
            f"wrote {write_profile(document['telemetry'], args.output_dir, spec.name)}"
        )
    print(
        f"wrote {paths['json']} ({len(runner.history)} probes, {elapsed:.1f}s)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Scenario artifacts: ``SCENARIO_<name>.json`` documents.

The JSON artifact is the durable record of a chaos campaign: the full spec
(re-runnable from the artifact alone), every cell's run records — including
the engine's per-segment recovery accounting, the event timeline with
invariant measurements, and the post-churn accuracy — plus per-backend
recovery-scaling fits.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

from ..bench.runner import write_report
from ..engine.errors import ExperimentError
from .metrics import scenario_fits
from .spec import ScenarioSpec

__all__ = [
    "scenario_json_path",
    "build_document",
    "write_scenario",
    "load_document",
]


def scenario_json_path(output_dir: str, spec: ScenarioSpec) -> str:
    """Path of the scenario's JSON artifact."""
    return os.path.join(output_dir, f"SCENARIO_{spec.name}.json")


def build_document(
    spec: ScenarioSpec,
    cells: List[Dict[str, Any]],
    workers: int,
) -> Dict[str, Any]:
    """Assemble the JSON artifact document for a completed scenario."""
    failed = [cell["cell_id"] for cell in cells if cell.get("error")]
    return {
        "artifact": "scenario",
        "name": spec.name,
        "generated_unix": int(time.time()),
        "workers": workers,
        "spec": spec.to_dict(),
        "fits": scenario_fits([cell for cell in cells if not cell.get("error")]),
        "failed_cells": failed,
        "cells": cells,
    }


def write_scenario(
    document: Dict[str, Any],
    output_dir: str,
    spec: ScenarioSpec,
) -> Dict[str, str]:
    """Write the JSON artifact; return its path."""
    os.makedirs(output_dir, exist_ok=True)
    json_path = scenario_json_path(output_dir, spec)
    write_report(document, json_path)
    return {"json": json_path}


def load_document(path: str) -> Optional[Dict[str, Any]]:
    """Load a previous scenario artifact, or ``None`` when absent."""
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise ExperimentError(
            f"cannot read scenario artifact {path}: {error}"
        ) from None
    if not isinstance(document, dict) or document.get("artifact") != "scenario":
        raise ExperimentError(f"{path} is not a scenario artifact")
    return document

"""Scenario and frontier artifacts.

``SCENARIO_<name>.json`` is the durable record of a chaos campaign: the full
spec (re-runnable from the artifact alone), every cell's run records —
including the engine's per-segment recovery accounting, the event timeline
with invariant measurements, and the post-churn accuracy — plus per-backend
recovery-scaling fits.  ``--resume`` support reuses the sweep layer's
grid-merge logic (:func:`completed_cell_ids` / :func:`merge_cells` are
duck-typed over ``spec.cells()``), so interrupted chaos grids pick up where
they stopped.

``FRONTIER_<name>.json`` is the durable record of an adversarial search
(:mod:`repro.scenarios.search`): the search spec, the strategy's result
(critical value, bracket, orientation), and the complete probe history —
every probe's mutated values, derived seeds, and survived/broken counts —
so any probe replays exactly via :func:`~repro.scenarios.search.probe_scenario`.
"""

from __future__ import annotations

import json
import os
import time
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..bench.runner import write_report
from ..engine.errors import ExperimentError
from ..fingerprint import code_fingerprint, spec_sha256
from ..obs.profile import merge_profiles, profile_from_cells
from ..resume import completed_cell_ids as _completed_cell_ids
from ..resume import merge_cells as _merge_cells
from .metrics import scenario_fits
from .spec import ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance for typing only
    from .search import SearchSpec

__all__ = [
    "scenario_json_path",
    "build_document",
    "write_scenario",
    "load_document",
    "completed_cell_ids",
    "merge_cells",
    "frontier_json_path",
    "build_frontier_document",
    "write_frontier",
    "load_frontier_document",
]


def scenario_json_path(output_dir: str, spec: ScenarioSpec) -> str:
    """Path of the scenario's JSON artifact."""
    return os.path.join(output_dir, f"SCENARIO_{spec.name}.json")


def completed_cell_ids(document: Optional[Dict[str, Any]], spec: ScenarioSpec):
    """Cell ids from a previous scenario artifact that ``--resume`` may skip.

    Delegates to the shared grid-resume helper of :mod:`repro.resume`,
    which is duck-typed over ``spec.cells()`` (one implementation for
    sweeps, scenarios, and the server's result cache).
    """
    return _completed_cell_ids(document, spec)


def merge_cells(
    document: Optional[Dict[str, Any]],
    fresh: List[Dict[str, Any]],
    spec: ScenarioSpec,
) -> List[Dict[str, Any]]:
    """Combine resumed scenario cells with freshly run ones.

    Shared-helper semantics (:func:`repro.resume.merge_cells`): fresh wins,
    except a fresh failed record never replaces a previous successful one.
    """
    return _merge_cells(document, fresh, spec)


def build_document(
    spec: ScenarioSpec,
    cells: List[Dict[str, Any]],
    workers: int,
) -> Dict[str, Any]:
    """Assemble the JSON artifact document for a completed scenario."""
    failed = [cell["cell_id"] for cell in cells if cell.get("error")]
    spec_dict = spec.to_dict()
    return {
        "artifact": "scenario",
        "name": spec.name,
        "generated_unix": int(time.time()),
        "workers": workers,
        "code_fingerprint": code_fingerprint(),
        "spec_sha256": spec_sha256(spec_dict),
        "spec": spec_dict,
        "fits": scenario_fits([cell for cell in cells if not cell.get("error")]),
        "telemetry": profile_from_cells(cells),
        "failed_cells": failed,
        "cells": cells,
    }


def write_scenario(
    document: Dict[str, Any],
    output_dir: str,
    spec: ScenarioSpec,
) -> Dict[str, str]:
    """Write the JSON artifact; return its path."""
    os.makedirs(output_dir, exist_ok=True)
    json_path = scenario_json_path(output_dir, spec)
    write_report(document, json_path)
    return {"json": json_path}


def load_document(path: str) -> Optional[Dict[str, Any]]:
    """Load a previous scenario artifact, or ``None`` when absent."""
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise ExperimentError(
            f"cannot read scenario artifact {path}: {error}"
        ) from None
    if not isinstance(document, dict) or document.get("artifact") != "scenario":
        raise ExperimentError(f"{path} is not a scenario artifact")
    return document


# --------------------------------------------------------------------------
# Frontier (adversarial search) artifacts
# --------------------------------------------------------------------------


def frontier_json_path(output_dir: str, spec: "SearchSpec") -> str:
    """Path of a search's JSON artifact."""
    return os.path.join(output_dir, f"FRONTIER_{spec.name}.json")


def build_frontier_document(
    spec: "SearchSpec",
    result: Dict[str, Any],
    history: List[Dict[str, Any]],
    workers: int,
) -> Dict[str, Any]:
    """Assemble the JSON artifact document for a completed search."""
    spec_dict = spec.to_dict()
    return {
        "artifact": "frontier",
        "name": spec.name,
        "generated_unix": int(time.time()),
        "workers": workers,
        "strategy": spec.strategy,
        "status": result.get("status"),
        "code_fingerprint": code_fingerprint(),
        "spec_sha256": spec_sha256(spec_dict),
        "spec": spec_dict,
        "result": result,
        "telemetry": merge_profiles(
            entry.get("telemetry") or {} for entry in history
        ),
        "history": history,
    }


def write_frontier(
    document: Dict[str, Any],
    output_dir: str,
    spec: "SearchSpec",
) -> Dict[str, str]:
    """Write the frontier JSON artifact; return its path."""
    os.makedirs(output_dir, exist_ok=True)
    json_path = frontier_json_path(output_dir, spec)
    write_report(document, json_path)
    return {"json": json_path}


def load_frontier_document(path: str) -> Optional[Dict[str, Any]]:
    """Load a previous frontier artifact, or ``None`` when absent."""
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise ExperimentError(
            f"cannot read frontier artifact {path}: {error}"
        ) from None
    if not isinstance(document, dict) or document.get("artifact") != "frontier":
        raise ExperimentError(f"{path} is not a frontier artifact")
    return document

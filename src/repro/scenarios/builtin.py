"""Built-in chaos scenarios for the counting stack and the baselines.

Each builtin is a ready-to-run :class:`~repro.scenarios.spec.ScenarioSpec`;
``repro-chaos --builtin NAME`` executes one, ``--list`` enumerates them, and
``--dump-spec`` prints any of them as a JSON starting point.

Calibration notes
-----------------
* ``recount-churn`` is the headline: the exact backup counter (Appendix
  C.2) runs to its Lemma-13 stabilisation (empirically ``~1.3 n^2``
  interactions), then 10% of the agents leave *with their tokens* and the
  survivors restart — the detected-membership-change model — and the
  scenario measures the time to re-count the new true ``n``, on both
  backends side by side.  The committed ``SCENARIO_recount-churn.json``
  artifact at ``n = 10^3`` is the repository's churn-recovery acceptance
  record.
* ``epidemic-rejoin`` sweeps the churn fraction through ``param_grid``: the
  broadcast completes, a wave of uninformed agents joins, and recovery is a
  fresh epidemic among the joiners — the robustness-curve shape is
  ``O(n log n)`` again.
* ``load-rebalance`` replaces 30% of the agents mid-balance (tokens leave
  with them; joiners arrive empty), so the token sum *drops* and the
  population must re-balance to a new mean — the token-sum invariant series
  in the artifact shows the loss explicitly.
* ``epidemic-fault-storm`` is a periodic campaign: every ``8 n log2 n``
  interactions, 5% of the agents crash-reset to uninformed; the epidemic
  re-closes after each wave.
* ``partition-heal`` isolates the broadcast source in one of two scheduler
  blocks from the start; the epidemic can only complete after the partition
  merges (agent backend, adversarial scheduler).
* ``stable-detect`` drives the stable hybrid (Algorithm 7 / Appendix B)
  through churn + restart and a mid-election clock-phase storm, tracking the
  ``error-flags`` invariant: the detection layer must actually raise, the
  error epidemic must carry the flag population-wide, and the run must
  still converge — via the always-correct backup.  Timing notes: the storm
  lands at ``3 n log2^2 n``, *after* the junta levels settle (earlier
  corruption is healed by re-initialisation) but well before the detection
  stage freezes the clocks (later corruption hits frozen clocks and is
  inert); the final 1-agent ``leave`` exists purely to keep the run alive
  past backup-path convergence until the drift errors have had their
  ``~15 n^2`` interactions to emerge.  Detection remains seed-stochastic
  (a storm can be absorbed when every victim happens to re-initialise);
  the committed ``base_seed = 1`` triggers in 13/16 grid runs.
* ``recount-smoke`` is the CI grid: the headline shape at ``n = 64``.

Built-in searches
-----------------
Ready-to-run :class:`~repro.scenarios.search.SearchSpec` instances for
``repro-chaos search``:

* ``epidemic-churn`` (headline): bisects the Poisson replacement *rate*
  under which a one-way broadcast can still complete.  Mean-field estimate:
  a replacement process at rate ``r`` killing a fraction ``f`` of informed
  agents removes ``r f I`` informed agents per parallel time unit while the
  epidemic adds ``I (n - I) / n``, so extinction sets in around
  ``r f ~ 1``; with ``f = 0.2`` the frontier sits near ``r ~ 4-5``, inside
  the ``[0.5, 12]`` bracket.
* ``backup-recount``: bisects the *leave fraction* of the recount-churn
  scenario with a deliberately tight post-churn budget.  The frontier is
  *decreasing*: a mild churn leaves a near-full population whose Lemma-13
  recount does not fit the leftover ``~2.5 n^2`` budget, while a severe
  churn shrinks the population enough for the recount to fit.
* ``epidemic-churn-2d``: the (mu + lambda) evolutionary variant hunting the
  mildest breaking (rate, fraction) pair of the same replacement process.
* ``search-smoke``: the headline frontier at ``n = 64``, bounded for CI.
"""

from __future__ import annotations

from typing import Dict, List

from ..engine.errors import ConfigurationError
from ..experiments.spec import BudgetPolicy
from .search import DimensionSpec, GuaranteeSpec, SearchSpec
from .spec import EventSpec, ScenarioSpec

__all__ = [
    "builtin_scenarios",
    "builtin_scenario_names",
    "resolve_builtin_scenario",
    "builtin_searches",
    "builtin_search_names",
    "resolve_builtin_search",
]


def builtin_scenarios() -> Dict[str, ScenarioSpec]:
    """Construct the builtin scenarios (fresh instances each call)."""
    specs = [
        ScenarioSpec(
            name="recount-churn",
            protocol="backup-exact",
            ns=[1_000],
            seeds_per_cell=2,
            backends=["agent", "batch"],
            budget=BudgetPolicy(factor=12.0, n_exponent=2.0, log_exponent=0.0),
            events=[
                EventSpec(
                    kind="leave",
                    at=BudgetPolicy(factor=4.0, n_exponent=2.0, log_exponent=0.0),
                    fraction=0.10,
                    restart=True,
                    label="churn-10pct",
                )
            ],
            invariants=["population", "token-sum"],
            max_checks=400,
            description=(
                "Exact counting (Appendix C.2) under churn: converge to n, "
                "lose 10% of the agents (and their tokens), restart the "
                "survivors, and measure the time to re-count the new true n "
                "— on both backends."
            ),
        ),
        ScenarioSpec(
            name="recount-smoke",
            protocol="backup-exact",
            ns=[64],
            seeds_per_cell=2,
            backends=["agent", "batch"],
            budget=BudgetPolicy(factor=16.0, n_exponent=2.0, log_exponent=0.0),
            events=[
                EventSpec(
                    kind="leave",
                    at=BudgetPolicy(factor=5.0, n_exponent=2.0, log_exponent=0.0),
                    fraction=0.25,
                    restart=True,
                    label="churn-25pct",
                )
            ],
            invariants=["population", "token-sum"],
            max_checks=400,
            description="Bounded CI grid exercising the scenario subsystem end to end.",
        ),
        ScenarioSpec(
            name="epidemic-rejoin",
            protocol="one-way-epidemic",
            ns=[256, 1_024, 4_096],
            seeds_per_cell=3,
            backends=["batch"],
            budget=BudgetPolicy(factor=80.0, n_exponent=1.0, log_exponent=1.0),
            events=[
                EventSpec(
                    kind="join",
                    at=BudgetPolicy(factor=20.0, n_exponent=1.0, log_exponent=1.0),
                    fraction="churn_fraction",
                    label="rejoin-wave",
                )
            ],
            param_grid={"churn_fraction": [0.25, 0.5, 1.0]},
            invariants=["population"],
            description=(
                "Robustness curve over churn severity (param_grid): a wave of "
                "uninformed agents joins a completed broadcast; recovery is a "
                "fresh epidemic among the joiners."
            ),
        ),
        ScenarioSpec(
            name="load-rebalance",
            protocol="classical-load-balancing",
            ns=[256, 1_024],
            seeds_per_cell=3,
            backends=["agent", "batch"],
            budget=BudgetPolicy(factor=96.0, n_exponent=1.0, log_exponent=1.0),
            events=[
                EventSpec(
                    kind="replace",
                    at=BudgetPolicy(factor=32.0, n_exponent=1.0, log_exponent=1.0),
                    fraction=0.30,
                    label="crash-rejoin-30pct",
                )
            ],
            invariants=["population", "token-sum"],
            description=(
                "Load balancing [10] under crash-rejoin churn: 30% of the "
                "agents are replaced by empty ones, the token sum drops with "
                "the leavers, and the survivors re-balance to the new mean."
            ),
        ),
        ScenarioSpec(
            name="epidemic-fault-storm",
            protocol="one-way-epidemic",
            ns=[1_024],
            seeds_per_cell=3,
            backends=["agent", "batch"],
            budget=BudgetPolicy(factor=96.0, n_exponent=1.0, log_exponent=1.0),
            events=[
                EventSpec(
                    kind="corrupt",
                    fault="reset",
                    at=BudgetPolicy(factor=8.0, n_exponent=1.0, log_exponent=1.0),
                    every=BudgetPolicy(factor=8.0, n_exponent=1.0, log_exponent=1.0),
                    repeat=5,
                    fraction=0.05,
                    label="reset-storm",
                )
            ],
            invariants=["population"],
            description=(
                "Periodic fault campaign: every wave crash-resets 5% of the "
                "agents to uninformed; the epidemic re-closes after each wave."
            ),
        ),
        ScenarioSpec(
            name="stable-detect",
            protocol="approximate-stable",
            ns=[64, 96],
            seeds_per_cell=4,
            base_seed=1,
            backends=["agent", "batch"],
            budget=BudgetPolicy(factor=26.0, n_exponent=2.0, log_exponent=0.0),
            events=[
                EventSpec(
                    kind="join",
                    at=BudgetPolicy(factor=1.0, n_exponent=1.0, log_exponent=2.0),
                    fraction=0.25,
                    restart=True,
                    label="churn-restart",
                ),
                EventSpec(
                    kind="corrupt",
                    fault="clock-phase-corruption",
                    at=BudgetPolicy(factor=3.0, n_exponent=1.0, log_exponent=2.0),
                    fraction=0.3,
                    label="clock-storm",
                ),
                EventSpec(
                    kind="leave",
                    at=BudgetPolicy(factor=20.0, n_exponent=2.0, log_exponent=0.0),
                    count=1,
                    label="keep-alive",
                ),
            ],
            invariants=["population", "error-flags"],
            description=(
                "The stable hybrid under churn + restart + a mid-election "
                "clock-phase storm: the error-flags series proves the "
                "detection layer fires (0 at the storm, population-wide at "
                "the end) while the backup still converges the run."
            ),
        ),
        ScenarioSpec(
            name="partition-heal",
            protocol="one-way-epidemic",
            ns=[256],
            seeds_per_cell=3,
            backends=["agent"],
            budget=BudgetPolicy(factor=64.0, n_exponent=1.0, log_exponent=1.0),
            events=[
                EventSpec(kind="partition", at_interactions=0, blocks=2, label="split"),
                EventSpec(
                    kind="merge",
                    at=BudgetPolicy(factor=16.0, n_exponent=1.0, log_exponent=1.0),
                    label="heal",
                ),
            ],
            invariants=["population"],
            description=(
                "Adversarial scheduler: the broadcast source is isolated in "
                "one of two partition blocks, so the epidemic can only "
                "complete after the partition heals."
            ),
        ),
    ]
    return {spec.name: spec for spec in specs}


def builtin_scenario_names() -> List[str]:
    """Names of the builtin scenarios, headline first."""
    return list(builtin_scenarios())


def resolve_builtin_scenario(name: str) -> ScenarioSpec:
    """Look up a builtin scenario by name."""
    specs = builtin_scenarios()
    try:
        return specs[name]
    except KeyError:
        known = ", ".join(specs)
        raise ConfigurationError(
            f"unknown builtin scenario {name!r}; available: {known}"
        ) from None


# --------------------------------------------------------------------------
# Built-in adversarial searches (repro-chaos search)
# --------------------------------------------------------------------------


def _epidemic_churn_scenario(n: int, seeds: int) -> ScenarioSpec:
    """One-cell base scenario of the epidemic-vs-replacement searches.

    A one-way broadcast runs against a Poisson replacement process: over a
    ``16 n log2 n`` window starting at ``4 n log2 n``, churn events at rate
    ``r`` (per ``n`` interactions) each replace 20% of the agents with
    uninformed ones.  The searches mutate ``r`` (and, in 2-D, the
    per-event fraction).
    """
    return ScenarioSpec(
        name="epidemic-churn-base",
        protocol="one-way-epidemic",
        ns=[n],
        seeds_per_cell=seeds,
        backends=["batch"],
        budget=BudgetPolicy(factor=26.0, n_exponent=1.0, log_exponent=1.0),
        events=[
            EventSpec(
                kind="replace",
                rate=2.0,
                fraction=0.2,
                at=BudgetPolicy(factor=4.0, n_exponent=1.0, log_exponent=1.0),
                window=BudgetPolicy(factor=16.0, n_exponent=1.0, log_exponent=1.0),
                label="replacement-storm",
            )
        ],
        invariants=["population"],
    )


def builtin_searches() -> Dict[str, SearchSpec]:
    """Construct the builtin searches (fresh instances each call)."""
    specs = [
        SearchSpec(
            name="epidemic-churn",
            scenario=_epidemic_churn_scenario(256, 3),
            dimensions=[DimensionSpec(event=0, dimension="rate", low=0.5, high=12.0)],
            guarantee=GuaranteeSpec(kind="recovered"),
            strategy="bisect",
            seeds_per_probe=3,
            tolerance=0.25,
            description=(
                "Critical churn rate of the one-way epidemic: bisect the "
                "Poisson replacement rate (20% uninformed replacements per "
                "event) until the broadcast can no longer re-close within "
                "its budget.  Mean-field estimate: extinction near "
                "rate x fraction ~ 1."
            ),
        ),
        SearchSpec(
            name="backup-recount",
            scenario=ScenarioSpec(
                name="backup-recount-base",
                protocol="backup-exact",
                ns=[192],
                seeds_per_cell=3,
                backends=["batch"],
                budget=BudgetPolicy(factor=4.45, n_exponent=2.0, log_exponent=0.0),
                events=[
                    EventSpec(
                        kind="leave",
                        at=BudgetPolicy(factor=4.0, n_exponent=2.0, log_exponent=0.0),
                        fraction=0.3,
                        restart=True,
                        label="churn",
                    )
                ],
                invariants=["population", "token-sum"],
            ),
            dimensions=[
                DimensionSpec(event=0, dimension="fraction", low=0.05, high=0.7)
            ],
            guarantee=GuaranteeSpec(kind="recovered"),
            strategy="bisect",
            seeds_per_probe=3,
            tolerance=0.02,
            description=(
                "Minimal survivable churn of the exact backup counter: after "
                "a leave-and-restart at 4 n^2, the Lemma-13 recount of the "
                "(1 - f) n survivors must fit the leftover ~0.45 n^2 budget.  "
                "The frontier is decreasing: mild churn breaks (too many "
                "agents to recount), severe churn survives."
            ),
        ),
        SearchSpec(
            name="epidemic-churn-2d",
            scenario=_epidemic_churn_scenario(128, 2),
            dimensions=[
                DimensionSpec(event=0, dimension="rate", low=0.5, high=12.0),
                DimensionSpec(event=0, dimension="fraction", low=0.05, high=0.5),
            ],
            guarantee=GuaranteeSpec(kind="recovered"),
            strategy="evolve",
            seeds_per_probe=2,
            max_probes=64,
            population=4,
            offspring=6,
            generations=4,
            description=(
                "Two-dimensional hunt for the mildest breaking "
                "(rate, fraction) pair of the replacement process: the "
                "(mu + lambda) strategy minimises severity among broken "
                "probes, mapping the rate x fraction ~ 1 extinction curve."
            ),
        ),
        SearchSpec(
            name="search-smoke",
            scenario=_epidemic_churn_scenario(64, 2),
            dimensions=[DimensionSpec(event=0, dimension="rate", low=0.5, high=12.0)],
            guarantee=GuaranteeSpec(kind="recovered"),
            strategy="bisect",
            seeds_per_probe=2,
            tolerance=1.0,
            probe_timeout_s=120.0,
            description="Bounded CI frontier: the headline search at n = 64.",
        ),
    ]
    return {spec.name: spec for spec in specs}


def builtin_search_names() -> List[str]:
    """Names of the builtin searches, headline first."""
    return list(builtin_searches())


def resolve_builtin_search(name: str) -> SearchSpec:
    """Look up a builtin search by name."""
    specs = builtin_searches()
    try:
        return specs[name]
    except KeyError:
        known = ", ".join(specs)
        raise ConfigurationError(
            f"unknown builtin search {name!r}; available: {known}"
        ) from None

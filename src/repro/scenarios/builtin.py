"""Built-in chaos scenarios for the counting stack and the baselines.

Each builtin is a ready-to-run :class:`~repro.scenarios.spec.ScenarioSpec`;
``repro-chaos --builtin NAME`` executes one, ``--list`` enumerates them, and
``--dump-spec`` prints any of them as a JSON starting point.

Calibration notes
-----------------
* ``recount-churn`` is the headline: the exact backup counter (Appendix
  C.2) runs to its Lemma-13 stabilisation (empirically ``~1.3 n^2``
  interactions), then 10% of the agents leave *with their tokens* and the
  survivors restart — the detected-membership-change model — and the
  scenario measures the time to re-count the new true ``n``, on both
  backends side by side.  The committed ``SCENARIO_recount-churn.json``
  artifact at ``n = 10^3`` is the repository's churn-recovery acceptance
  record.
* ``epidemic-rejoin`` sweeps the churn fraction through ``param_grid``: the
  broadcast completes, a wave of uninformed agents joins, and recovery is a
  fresh epidemic among the joiners — the robustness-curve shape is
  ``O(n log n)`` again.
* ``load-rebalance`` replaces 30% of the agents mid-balance (tokens leave
  with them; joiners arrive empty), so the token sum *drops* and the
  population must re-balance to a new mean — the token-sum invariant series
  in the artifact shows the loss explicitly.
* ``epidemic-fault-storm`` is a periodic campaign: every ``8 n log2 n``
  interactions, 5% of the agents crash-reset to uninformed; the epidemic
  re-closes after each wave.
* ``partition-heal`` isolates the broadcast source in one of two scheduler
  blocks from the start; the epidemic can only complete after the partition
  merges (agent backend, adversarial scheduler).
* ``recount-smoke`` is the CI grid: the headline shape at ``n = 64``.
"""

from __future__ import annotations

from typing import Dict, List

from ..engine.errors import ConfigurationError
from ..experiments.spec import BudgetPolicy
from .spec import EventSpec, ScenarioSpec

__all__ = ["builtin_scenarios", "builtin_scenario_names", "resolve_builtin_scenario"]


def builtin_scenarios() -> Dict[str, ScenarioSpec]:
    """Construct the builtin scenarios (fresh instances each call)."""
    specs = [
        ScenarioSpec(
            name="recount-churn",
            protocol="backup-exact",
            ns=[1_000],
            seeds_per_cell=2,
            backends=["agent", "batch"],
            budget=BudgetPolicy(factor=12.0, n_exponent=2.0, log_exponent=0.0),
            events=[
                EventSpec(
                    kind="leave",
                    at=BudgetPolicy(factor=4.0, n_exponent=2.0, log_exponent=0.0),
                    fraction=0.10,
                    restart=True,
                    label="churn-10pct",
                )
            ],
            invariants=["population", "token-sum"],
            max_checks=400,
            description=(
                "Exact counting (Appendix C.2) under churn: converge to n, "
                "lose 10% of the agents (and their tokens), restart the "
                "survivors, and measure the time to re-count the new true n "
                "— on both backends."
            ),
        ),
        ScenarioSpec(
            name="recount-smoke",
            protocol="backup-exact",
            ns=[64],
            seeds_per_cell=2,
            backends=["agent", "batch"],
            budget=BudgetPolicy(factor=16.0, n_exponent=2.0, log_exponent=0.0),
            events=[
                EventSpec(
                    kind="leave",
                    at=BudgetPolicy(factor=5.0, n_exponent=2.0, log_exponent=0.0),
                    fraction=0.25,
                    restart=True,
                    label="churn-25pct",
                )
            ],
            invariants=["population", "token-sum"],
            max_checks=400,
            description="Bounded CI grid exercising the scenario subsystem end to end.",
        ),
        ScenarioSpec(
            name="epidemic-rejoin",
            protocol="one-way-epidemic",
            ns=[256, 1_024, 4_096],
            seeds_per_cell=3,
            backends=["batch"],
            budget=BudgetPolicy(factor=80.0, n_exponent=1.0, log_exponent=1.0),
            events=[
                EventSpec(
                    kind="join",
                    at=BudgetPolicy(factor=20.0, n_exponent=1.0, log_exponent=1.0),
                    fraction="churn_fraction",
                    label="rejoin-wave",
                )
            ],
            param_grid={"churn_fraction": [0.25, 0.5, 1.0]},
            invariants=["population"],
            description=(
                "Robustness curve over churn severity (param_grid): a wave of "
                "uninformed agents joins a completed broadcast; recovery is a "
                "fresh epidemic among the joiners."
            ),
        ),
        ScenarioSpec(
            name="load-rebalance",
            protocol="classical-load-balancing",
            ns=[256, 1_024],
            seeds_per_cell=3,
            backends=["agent", "batch"],
            budget=BudgetPolicy(factor=96.0, n_exponent=1.0, log_exponent=1.0),
            events=[
                EventSpec(
                    kind="replace",
                    at=BudgetPolicy(factor=32.0, n_exponent=1.0, log_exponent=1.0),
                    fraction=0.30,
                    label="crash-rejoin-30pct",
                )
            ],
            invariants=["population", "token-sum"],
            description=(
                "Load balancing [10] under crash-rejoin churn: 30% of the "
                "agents are replaced by empty ones, the token sum drops with "
                "the leavers, and the survivors re-balance to the new mean."
            ),
        ),
        ScenarioSpec(
            name="epidemic-fault-storm",
            protocol="one-way-epidemic",
            ns=[1_024],
            seeds_per_cell=3,
            backends=["agent", "batch"],
            budget=BudgetPolicy(factor=96.0, n_exponent=1.0, log_exponent=1.0),
            events=[
                EventSpec(
                    kind="corrupt",
                    fault="reset",
                    at=BudgetPolicy(factor=8.0, n_exponent=1.0, log_exponent=1.0),
                    every=BudgetPolicy(factor=8.0, n_exponent=1.0, log_exponent=1.0),
                    repeat=5,
                    fraction=0.05,
                    label="reset-storm",
                )
            ],
            invariants=["population"],
            description=(
                "Periodic fault campaign: every wave crash-resets 5% of the "
                "agents to uninformed; the epidemic re-closes after each wave."
            ),
        ),
        ScenarioSpec(
            name="partition-heal",
            protocol="one-way-epidemic",
            ns=[256],
            seeds_per_cell=3,
            backends=["agent"],
            budget=BudgetPolicy(factor=64.0, n_exponent=1.0, log_exponent=1.0),
            events=[
                EventSpec(kind="partition", at_interactions=0, blocks=2, label="split"),
                EventSpec(
                    kind="merge",
                    at=BudgetPolicy(factor=16.0, n_exponent=1.0, log_exponent=1.0),
                    label="heal",
                ),
            ],
            invariants=["population"],
            description=(
                "Adversarial scheduler: the broadcast source is isolated in "
                "one of two partition blocks, so the epidemic can only "
                "complete after the partition heals."
            ),
        ),
    ]
    return {spec.name: spec for spec in specs}


def builtin_scenario_names() -> List[str]:
    """Names of the builtin scenarios, headline first."""
    return list(builtin_scenarios())


def resolve_builtin_scenario(name: str) -> ScenarioSpec:
    """Look up a builtin scenario by name."""
    specs = builtin_scenarios()
    try:
        return specs[name]
    except KeyError:
        known = ", ".join(specs)
        raise ConfigurationError(
            f"unknown builtin scenario {name!r}; available: {known}"
        ) from None

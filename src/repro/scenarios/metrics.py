"""Recovery metrics and conservation invariants for chaos scenarios.

Two measurement layers:

* **Invariants** — named quantities computed from the configuration
  histogram at every event boundary (run start, after each event, run end).
  The headline one is the counting stack's token conservation: churn *must*
  move the token sum (agents leave with their tokens) and a restart must
  re-establish ``Σ = n`` at the new size; a clone fault breaks conservation
  outright.  Tracking the series through a timeline is how a scenario proves
  the backends' histogram surgery is bookkeeping-exact.

* **Recovery statistics** — per-cell reductions of the engine's per-segment
  records: whether runs reconverged after the final disturbance, how many
  interactions the recovery took (absolute and in parallel time at the
  *new* population size), and the post-churn output accuracy against the
  new true ``n``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from ..counting.backup import ApproximateBackupProtocol, ExactBackupProtocol
from ..counting.stable_approximate import StableApproximateProtocol
from ..counting.stable_count_exact import StableCountExactProtocol
from ..engine.errors import ConfigurationError
from ..engine.protocol import Protocol
from ..experiments.aggregate import fit_power_law, sample_stats
from ..primitives.load_balancing import (
    ClassicalLoadBalancing,
    PowersOfTwoLoadBalancing,
    load_from_log,
)

__all__ = [
    "InvariantSpec",
    "INVARIANTS",
    "resolve_invariant",
    "invariant_names",
    "scenario_cell_stats",
    "scenario_fits",
]


@dataclass(frozen=True)
class InvariantSpec:
    """A named conserved (or deliberately non-conserved) quantity.

    Attributes:
        name: Registry key used by scenario specs.
        summary: One line shown by ``repro-chaos --list``.
        compute: Callable ``(protocol, key_counts) -> value`` over the
            configuration histogram.
    """

    name: str
    summary: str
    compute: Callable[[Protocol, Counter], Any]


def _population(protocol: Protocol, counts: Counter) -> int:
    return sum(counts.values())


def _distinct_keys(protocol: Protocol, counts: Counter) -> int:
    return len(counts)


def _token_sum(protocol: Protocol, counts: Counter) -> int:
    """Total tokens in the configuration, per the protocol's token encoding.

    For the exact backup protocol only *uncounted* agents hold real tokens
    (their ``count`` field); counted agents carry pure broadcast state.  The
    approximate backup's piles hold ``2^k`` tokens (``k = -1`` is empty).
    The load-balancing processes store tokens directly (or their log).
    """
    if isinstance(protocol, ExactBackupProtocol):
        return sum(
            count * multiplicity
            for (counted, count, _instance), multiplicity in counts.items()
            if not counted
        )
    if isinstance(protocol, ApproximateBackupProtocol):
        return sum(
            (1 << k) * multiplicity
            for (k, _k_max, _instance), multiplicity in counts.items()
            if k >= 0
        )
    if isinstance(protocol, ClassicalLoadBalancing):
        return sum(load * multiplicity for load, multiplicity in counts.items())
    if isinstance(protocol, PowersOfTwoLoadBalancing):
        return sum(
            load_from_log(k) * multiplicity for k, multiplicity in counts.items()
        )
    raise ConfigurationError(
        f"no token-sum invariant is defined for protocol {protocol.name!r}"
    )


def _error_flags(protocol: Protocol, counts: Counter) -> int:
    """Agents whose error-detection flag is raised (stable hybrids only).

    Both stable hybrids end their state key with the boolean error flag, so
    the count is a direct histogram reduction.  In a chaos timeline this
    series is how a scenario *asserts the detection layer fired*: it must be
    zero at the start and strictly positive after a disturbance that
    invalidates the fast path (the error epidemic then carries it to ``n``).
    """
    if not isinstance(protocol, (StableApproximateProtocol, StableCountExactProtocol)):
        raise ConfigurationError(
            f"the error-flags invariant needs a stable hybrid protocol "
            f"(approximate-stable / count-exact-stable); got {protocol.name!r}"
        )
    return sum(
        multiplicity for key, multiplicity in counts.items() if key[-1]
    )


INVARIANTS: Dict[str, InvariantSpec] = {
    spec.name: spec
    for spec in (
        InvariantSpec(
            "population",
            "total agent count in the histogram (checks backend bookkeeping)",
            _population,
        ),
        InvariantSpec(
            "distinct-keys",
            "number of distinct state keys (configuration width)",
            _distinct_keys,
        ),
        InvariantSpec(
            "token-sum",
            "total tokens (backup counting / load balancing protocols)",
            _token_sum,
        ),
        InvariantSpec(
            "error-flags",
            "agents with a raised error-detection flag (stable hybrids)",
            _error_flags,
        ),
    )
}


def resolve_invariant(name: str) -> InvariantSpec:
    """Look up an invariant, with a helpful error for unknown names."""
    try:
        return INVARIANTS[name]
    except KeyError:
        known = ", ".join(sorted(INVARIANTS))
        raise ConfigurationError(
            f"unknown invariant {name!r}; registered invariants: {known}"
        ) from None


def invariant_names() -> List[str]:
    """Registered invariant names."""
    return list(INVARIANTS)


# --------------------------------------------------------------------------
# Per-cell recovery statistics
# --------------------------------------------------------------------------


def _final_segment(run: Dict[str, Any]) -> Dict[str, Any]:
    segments = (run.get("extra") or {}).get("segments") or []
    return segments[-1] if segments else {}


def scenario_cell_stats(n: int, runs: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Reduce one scenario cell's run records to recovery statistics.

    ``runs`` are the runner's augmented
    :meth:`~repro.engine.simulator.SimulationResult.as_json_dict` records.
    A run counts as *recovered* only when its final segment was opened by a
    timeline event that actually fired AND converged — a run whose events
    all landed beyond the budget never experienced a disturbance, so its
    convergence proves nothing about recovery; such runs are surfaced in
    ``undisturbed_runs`` instead of inflating the rate.  The
    ``converged_runs`` / ``convergence_rate`` / ``convergence_interactions``
    aliases keep the shared sweep progress line and CSV tooling working on
    scenario cells.
    """
    recovered = 0
    undisturbed = 0
    recovery: List[float] = []
    recovery_parallel: List[float] = []
    accuracy: List[float] = []
    reasons: Dict[str, int] = {}
    for run in runs:
        final = _final_segment(run)
        if final.get("opened_by") is None:
            undisturbed += 1
        elif final.get("converged"):
            recovered += 1
        value = final.get("recovery_interactions")
        if value is not None:
            recovery.append(value)
            final_n = final.get("n") or run.get("n") or n
            recovery_parallel.append(value / final_n)
        if run.get("post_accuracy") is not None:
            accuracy.append(run["post_accuracy"])
        reason = str(run.get("stopped_reason"))
        reasons[reason] = reasons.get(reason, 0) + 1
    rate = recovered / len(runs) if runs else 0.0
    return {
        "runs": len(runs),
        "recovered_runs": recovered,
        "undisturbed_runs": undisturbed,
        "recovery_rate": rate,
        "recovery_interactions": sample_stats(recovery),
        "recovery_parallel_time": sample_stats(recovery_parallel),
        "post_accuracy": sample_stats(accuracy),
        "final_n": sample_stats(run.get("n") for run in runs),
        "wall_time_s": sample_stats(run["wall_time_s"] for run in runs),
        "stopped_reasons": reasons,
        # Aliases for the shared sweep-runner progress/CSV plumbing.
        "converged_runs": recovered,
        "convergence_rate": rate,
        "convergence_interactions": sample_stats(recovery),
    }


def scenario_fits(cells: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fit recovery-time scaling across a scenario grid, per backend.

    Robustness curves: mean interactions-to-reconvergence after the final
    disturbance versus the initial population size, one fit per backend so
    agent/batch cells of the same scenario can be compared directly.
    """
    by_backend: Dict[str, List] = {}
    for cell in cells:
        if cell.get("error"):
            continue
        stats = cell.get("stats") or {}
        summary = stats.get("recovery_interactions")
        if summary:
            by_backend.setdefault(cell.get("backend", "?"), []).append(
                (cell["n"], summary["mean"])
            )
    return {
        "recovery_interactions": {
            backend: fit_power_law(points) for backend, points in by_backend.items()
        }
    }

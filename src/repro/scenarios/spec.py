"""Declarative chaos-scenario specifications with JSON round-tripping.

A :class:`ScenarioSpec` composes a registered protocol with a *timeline* of
disturbance events — agent churn (join/leave/replace schedules), fault
campaigns (repeated state corruption), population restarts, and adversarial
scheduler reconfiguration (partition/merge) — and measures how the protocol
recovers.  Like :class:`~repro.experiments.spec.SweepSpec` it references no
live objects: a spec serialises to JSON, ships to spawned workers, embeds
into ``SCENARIO_*.json`` artifacts, and re-runs bit-identically.

Event *times* are expressed as :class:`~repro.experiments.spec.BudgetPolicy`
terms (``factor * n^a * log2(n)^b`` interactions), so a schedule like
"remove 10% of the agents at ``t = 5 n log n``" stays meaningful across the
population-size grid; absolute interaction counts are available as an
override.  Event *magnitudes* are fractions of the population at the moment
the event fires (churn compounds), or absolute agent counts — and a fraction
may name a ``param_grid`` parameter, which is what plugs churn severity into
the sweep machinery (one grid cell per churn fraction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from ..engine.backends import BACKEND_NAMES, SAMPLER_NAMES
from ..engine.errors import ConfigurationError
from ..engine.rng import SeedLike, derive_seed
from ..experiments.spec import BudgetPolicy, GridSpec, _validate_accel, policy_from
from .faults import resolve_fault

__all__ = ["EVENT_KINDS", "EventSpec", "ScenarioCell", "ScenarioSpec"]

#: Supported timeline-event kinds.
EVENT_KINDS = (
    "join",      # fresh agents join (initial state, new ids)
    "leave",     # uniformly random agents leave
    "replace",   # crash-and-rejoin churn: leave + join, n unchanged
    "restart",   # every agent resets to the initial configuration at current n
    "corrupt",   # a fault model corrupts random victims (see scenarios.faults)
    "partition", # split the interaction graph into residue-class blocks
    "merge",     # heal a partition back to uniform interactions
)

#: Event kinds that need a magnitude (fraction or count).
_SIZED_KINDS = ("join", "leave", "replace", "corrupt")

#: Event kinds that reconfigure the scheduler (agent backend only).
SCHEDULER_KINDS = ("partition", "merge")


@dataclass
class EventSpec:
    """One scheduled disturbance in a scenario timeline.

    Attributes:
        kind: One of :data:`EVENT_KINDS`.
        at: Fire time as a ``factor * n^a * log2(n)^b`` interaction count
            (resolved against the cell's population size); alternatively
            ``at_interactions`` gives an absolute time.  Exactly one of the
            two must be set.
        at_interactions: Absolute fire time in interactions.
        fraction: Magnitude of sized events as a fraction of the population
            at fire time, or the *name* of a cell parameter holding that
            fraction (the ``param_grid`` hook).
        count: Absolute magnitude override (agents).
        rate: Turns a churn event into a Poisson arrival *process*: expected
            arrivals per parallel-time unit (``n`` interactions), starting at
            ``at`` and lasting ``window``.  Each arrival applies the event
            once with the per-arrival magnitude (``fraction`` / ``count``,
            defaulting to a single agent), so a schedule mutates a churn
            *rate* rather than a one-shot fraction — the continuous-churn
            model the adversarial searches probe.
        window: Duration of the arrival process as a time policy (required
            with ``rate``).
        restart: For churn kinds — also restart the whole population right
            after the churn, modelling detected membership change: the
            protocols re-run at the new true ``n``, which is what makes the
            counting stack *recount*.
        fault: Fault-model name for ``corrupt`` events (see
            :mod:`repro.scenarios.faults`).
        repeat: Number of occurrences (a periodic campaign when > 1).
        every: Period between occurrences, as a time policy (required when
            ``repeat > 1``).
        blocks: Number of residue-class blocks for ``partition`` events.
        label: Human-readable tag carried into records; defaults to the kind
            (suffixed with the occurrence index for campaigns).
    """

    kind: str
    at: Optional[BudgetPolicy] = None
    at_interactions: Optional[int] = None
    fraction: Optional[Union[float, str]] = None
    count: Optional[int] = None
    rate: Optional[float] = None
    window: Optional[BudgetPolicy] = None
    restart: bool = False
    fault: str = "reset"
    repeat: int = 1
    every: Optional[BudgetPolicy] = None
    blocks: int = 2
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"unknown event kind {self.kind!r}; expected one of {EVENT_KINDS}"
            )
        if self.kind == "corrupt":
            resolve_fault(self.fault)  # a typo'd fault must fail at spec time
        if self.at is not None:
            self.at = policy_from(self.at, "event time policy")
        if self.every is not None:
            self.every = policy_from(self.every, "event period policy")
        if (self.at is None) == (self.at_interactions is None):
            raise ConfigurationError(
                f"event {self.kind!r} needs exactly one of at / at_interactions"
            )
        if self.at_interactions is not None and self.at_interactions < 0:
            raise ConfigurationError("at_interactions must be non-negative")
        if self.rate is not None:
            if self.kind not in ("join", "leave", "replace"):
                raise ConfigurationError(
                    "a churn process (rate=) only applies to join/leave/replace"
                )
            if self.rate <= 0:
                raise ConfigurationError("churn-process rate must be positive")
            if self.window is None:
                raise ConfigurationError("a churn process (rate=) needs window=")
            self.window = policy_from(self.window, "event window policy")
            if self.repeat > 1:
                raise ConfigurationError(
                    "a churn process draws its own arrivals; repeat does not apply"
                )
            if self.fraction is None and self.count is None:
                self.count = 1  # default per-arrival magnitude: one agent
        elif self.window is not None:
            raise ConfigurationError("window= only applies to churn processes (rate=)")
        if self.kind in _SIZED_KINDS:
            if (self.fraction is None) == (self.count is None):
                raise ConfigurationError(
                    f"event {self.kind!r} needs exactly one of fraction / count"
                )
            if isinstance(self.fraction, (int, float)) and not 0 < float(self.fraction) <= 1:
                raise ConfigurationError("event fraction must lie in (0, 1]")
            if self.count is not None and self.count < 1:
                raise ConfigurationError("event count must be at least 1")
        if self.restart and self.kind not in ("join", "leave", "replace"):
            raise ConfigurationError("restart only applies to churn events")
        if self.repeat < 1:
            raise ConfigurationError("repeat must be at least 1")
        if self.repeat > 1 and self.every is None:
            raise ConfigurationError("periodic events (repeat > 1) need every=")
        if self.kind == "partition" and self.blocks < 2:
            raise ConfigurationError("partition needs at least 2 blocks")
        if not self.label:
            self.label = self.kind

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EventSpec":
        if not isinstance(data, dict):
            raise ConfigurationError("each event must be a JSON object")
        payload = dict(data)
        known = set(cls.__dataclass_fields__)
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown event fields: {', '.join(sorted(unknown))}"
            )
        try:
            return cls(**payload)
        except TypeError as error:
            raise ConfigurationError(f"invalid event: {error}") from None


@dataclass(frozen=True)
class ScenarioCell:
    """One scenario grid cell: a (parameters, n, backend) combination."""

    cell_id: str
    n: int
    backend: str
    params: Dict[str, Any]
    seeds: Tuple[int, ...]


def _param_suffix(params: Dict[str, Any]) -> str:
    if not params:
        return ""
    parts = [f"{key}={params[key]}" for key in sorted(params)]
    return "-" + "-".join(parts)


@dataclass
class ScenarioSpec(GridSpec):
    """A declarative chaos scenario.

    Attributes:
        name: Scenario name; determines the ``SCENARIO_<name>.json`` artifact.
        protocol: Registry name (:mod:`repro.experiments.registry`).
        ns: Population sizes of the grid (the *initial* sizes; churn moves
            them mid-run).
        events: The disturbance timeline.
        seeds_per_cell: Seeded repetitions per cell.
        base_seed: Root seed; every cell seed is derived from it.
        backends: Backends to run each cell on — recovery claims are checked
            on ``["agent", "batch"]`` cells side by side; scenarios with
            scheduler events are agent-only.
        sampler: Batch-backend weighted-sampling strategy (``"auto"``,
            ``"scan"``, ``"alias"``, ``"fenwick"``, ``"vector"``);
            agent-backend cells ignore it, so mixed-backend grids can share
            one spec.
        accel: Batch-backend hot-loop implementation (``"auto"``,
            ``"numpy"``, ``"python"`` — see :mod:`repro.engine.vectorized`);
            agent-backend cells ignore it.
        params: Protocol parameters shared by every cell.
        param_grid: Per-parameter value lists; the grid is the cartesian
            product with ``ns`` and ``backends``.  Parameters may be consumed
            by the protocol builder *or* referenced by name from an event's
            ``fraction`` (churn-severity grids).
        budget: Interaction-budget policy (the whole timeline must fit).
        check_interval_factor: Convergence-check cadence in units of ``n``.
        max_checks: Bound on convergence checks per run (cadence stretch).
        confirm_checks: Consecutive satisfied checks to stop early (only
            after the final event).
        invariants: Named invariants measured at every event boundary (see
            :data:`repro.scenarios.metrics.INVARIANTS`), e.g. the token-sum
            conservation of the counting stack through churn.
        cell_timeout_s: Optional per-cell wall-time budget (same contract as
            :attr:`repro.experiments.spec.SweepSpec.cell_timeout_s`).
        description: Free-form text carried into the artifact.
    """

    name: str
    protocol: str
    ns: List[int]
    events: List[EventSpec]
    seeds_per_cell: int = 3
    base_seed: SeedLike = 0
    backends: List[str] = field(default_factory=lambda: ["auto"])
    sampler: str = "auto"
    accel: str = "auto"
    params: Dict[str, Any] = field(default_factory=dict)
    param_grid: Dict[str, List[Any]] = field(default_factory=dict)
    budget: BudgetPolicy = field(default_factory=BudgetPolicy)
    check_interval_factor: float = 1.0
    max_checks: int = 2000
    confirm_checks: int = 3
    invariants: List[str] = field(default_factory=list)
    cell_timeout_s: Optional[float] = None
    description: str = ""

    _spec_kind = "scenario"

    def __post_init__(self) -> None:
        self._validate_grid()
        self.events = [
            event if isinstance(event, EventSpec) else EventSpec.from_dict(event)
            for event in self.events
        ]
        if not self.events:
            raise ConfigurationError(
                "a scenario needs at least one event (use repro-sweep for "
                "undisturbed grids)"
            )
        if not self.backends:
            raise ConfigurationError("scenario requires at least one backend")
        for backend in self.backends:
            if backend not in BACKEND_NAMES:
                raise ConfigurationError(
                    f"unknown backend {backend!r}; expected one of {BACKEND_NAMES}"
                )
        if self.sampler not in SAMPLER_NAMES:
            raise ConfigurationError(
                f"unknown sampler {self.sampler!r}; expected one of {SAMPLER_NAMES}"
            )
        _validate_accel(self.accel, self.sampler, self._spec_kind)
        if self.uses_scheduler_events() and any(
            backend != "agent" for backend in self.backends
        ):
            raise ConfigurationError(
                "partition/merge events reconfigure the interaction scheduler, "
                'which only the per-agent backend supports; set backends=["agent"]'
            )

    def uses_scheduler_events(self) -> bool:
        """Whether the timeline reconfigures the scheduler (agent-only)."""
        return any(event.kind in SCHEDULER_KINDS for event in self.events)

    # ------------------------------------------------------------------ grid
    def cells(self) -> List[ScenarioCell]:
        """Expand the grid into cells with deterministically derived seeds."""
        expanded: List[ScenarioCell] = []
        for variant in self._param_variants():
            suffix = _param_suffix(
                {key: variant[key] for key in sorted(self.param_grid)}
            )
            for n in self.ns:
                for backend in self.backends:
                    seeds = tuple(
                        derive_seed(
                            self.base_seed,
                            "scenario",
                            self.name,
                            self.protocol,
                            n,
                            backend,
                            repr(sorted(variant.items())),
                            index,
                        )
                        for index in range(self.seeds_per_cell)
                    )
                    expanded.append(
                        ScenarioCell(
                            cell_id=f"{self.protocol}{suffix}-n{n}-{backend}",
                            n=n,
                            backend=backend,
                            params=variant,
                            seeds=seeds,
                        )
                    )
        return expanded
